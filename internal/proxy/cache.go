package proxy

import (
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// VerifyCache memoizes successful chain verifications. A portal reconnects
// to a repository with the same host-credential chain on every operation,
// and the repository sees the same portal chain thousands of times a day;
// re-walking the RSA signatures each time is pure hot-path waste
// (paper §3.3's many-portals workload). The cache keys on a SHA-256
// fingerprint of the raw DER chain plus the depth bound, so any bit of
// difference in the presented chain is a miss.
//
// Security semantics are unchanged:
//
//   - entries expire at the chain's validity intersection (earliest
//     NotAfter, latest NotBefore), evaluated against the caller's clock;
//   - the revocation hook is re-run on every hit — a chain revoked since
//     it was cached is rejected exactly as an uncached one would be — and
//     Invalidate drops everything on CRL reload as a second line;
//   - the trust roots are compared on every hit; a lookup under different
//     roots is a miss, not a cross-trust leak.
//
// Failed verifications are never cached: a malformed chain costs the
// attacker a full walk every time, and a chain that fails only on clock
// skew can succeed moments later.
type VerifyCache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry //myproxy:guardedby mu
	max     int

	hits, misses atomic.Int64
}

type cacheEntry struct {
	roots     *x509.CertPool
	res       Result
	chain     []*x509.Certificate
	notBefore time.Time
	notAfter  time.Time
}

// DefaultVerifyCacheSize bounds a cache built by NewVerifyCache(0).
const DefaultVerifyCacheSize = 1024

// NewVerifyCache builds a cache holding at most max verified chains;
// max <= 0 selects DefaultVerifyCacheSize.
func NewVerifyCache(max int) *VerifyCache {
	if max <= 0 {
		max = DefaultVerifyCacheSize
	}
	return &VerifyCache{entries: make(map[[sha256.Size]byte]*cacheEntry), max: max}
}

// fingerprint hashes the raw DER chain and the option fields that change
// the verdict. Length prefixes keep certificate boundaries unambiguous.
func fingerprint(chain []*x509.Certificate, maxDepth int) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(maxDepth))
	h.Write(buf[:])
	for _, c := range chain {
		binary.BigEndian.PutUint64(buf[:], uint64(len(c.Raw)))
		h.Write(buf[:])
		h.Write(c.Raw)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// Verify is a caching front end to Verify: identical contract, identical
// errors on the miss path. A nil *VerifyCache degrades to plain Verify.
//myproxy:hotpath
func (vc *VerifyCache) Verify(chain []*x509.Certificate, opts VerifyOptions) (*Result, error) {
	if vc == nil || len(chain) == 0 || opts.Roots == nil {
		return Verify(chain, opts)
	}
	now := opts.CurrentTime
	if now.IsZero() {
		now = time.Now()
	}
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	key := fingerprint(chain, maxDepth)

	vc.mu.Lock()
	e, ok := vc.entries[key]
	vc.mu.Unlock()
	if ok && e.roots.Equal(opts.Roots) && !now.Before(e.notBefore) && !now.After(e.notAfter) {
		// Revocation is the one verdict allowed to change while an entry
		// is fresh; re-check it on the cheap map-lookup path every hit.
		if opts.IsRevoked != nil {
			for _, c := range e.chain {
				if opts.IsRevoked(c) {
					vc.drop(key)
					return nil, fmt.Errorf("proxy: certificate %q is revoked", c.SerialNumber)
				}
			}
		}
		vc.hits.Add(1)
		res := e.res
		return &res, nil
	}
	vc.misses.Add(1)

	res, err := Verify(chain, opts)
	if err != nil {
		return nil, err
	}
	entry := &cacheEntry{roots: opts.Roots, res: *res, chain: chain}
	for i, c := range chain {
		if i == 0 || c.NotBefore.After(entry.notBefore) {
			entry.notBefore = c.NotBefore
		}
		if i == 0 || c.NotAfter.Before(entry.notAfter) {
			entry.notAfter = c.NotAfter
		}
	}
	vc.mu.Lock()
	if len(vc.entries) >= vc.max {
		// Random-victim eviction: map iteration order is randomized, and
		// the working set (distinct portal chains) is far below max.
		for k := range vc.entries {
			delete(vc.entries, k)
			break
		}
	}
	vc.entries[key] = entry
	vc.mu.Unlock()
	return res, nil
}

func (vc *VerifyCache) drop(key [sha256.Size]byte) {
	vc.mu.Lock()
	delete(vc.entries, key)
	vc.mu.Unlock()
}

// Invalidate empties the cache. Call it whenever revocation data is
// reloaded so no verdict predates the new CRL set.
func (vc *VerifyCache) Invalidate() {
	if vc == nil {
		return
	}
	vc.mu.Lock()
	vc.entries = make(map[[sha256.Size]byte]*cacheEntry)
	vc.mu.Unlock()
}

// Len reports the number of cached verdicts.
func (vc *VerifyCache) Len() int {
	if vc == nil {
		return 0
	}
	vc.mu.Lock()
	defer vc.mu.Unlock()
	return len(vc.entries)
}

// Hits reports cache hits served (diagnostics, tests).
func (vc *VerifyCache) Hits() int64 {
	if vc == nil {
		return 0
	}
	return vc.hits.Load()
}

// Misses reports lookups that fell through to a full verification.
func (vc *VerifyCache) Misses() int64 {
	if vc == nil {
		return 0
	}
	return vc.misses.Load()
}
