package proxy

import (
	"context"
	"crypto"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"time"

	"repro/internal/pki"
)

// KeySource supplies private keys for freshly minted proxies. It is the
// seam through which a background pre-generation pool (internal/keypool)
// feeds the hot path; implementations must fall back to synchronous
// generation rather than fail when they cannot serve a pooled key — in
// particular when asked for a spec they do not stock.
// A nil KeySource means pki.GenerateSigner.
type KeySource interface {
	Get(ctx context.Context, spec pki.KeySpec) (crypto.Signer, error)
}

// Type selects the proxy certificate style.
type Type int

const (
	// RFC3820 is an RFC-3820-style proxy carrying a critical ProxyCertInfo
	// extension with the inherit-all policy. It is the zero value, so it
	// is the default style everywhere a Type is left unset.
	RFC3820 Type = iota
	// RFC3820Limited carries the Globus limited-proxy policy OID.
	RFC3820Limited
	// RFC3820Independent carries the independent policy: no inherited
	// rights.
	RFC3820Independent
	// RFC3820Restricted carries a restricted-operations policy body
	// (paper §6.5); see Options.RestrictedOps.
	RFC3820Restricted
	// Legacy is a GSI legacy full proxy: subject = issuer + CN=proxy, no
	// extension. This is what the paper's 2001 deployment used.
	Legacy
	// LegacyLimited is a GSI legacy limited proxy (CN=limited proxy);
	// job-starting services reject it.
	LegacyLimited
)

func (t Type) String() string {
	switch t {
	case Legacy:
		return "legacy"
	case LegacyLimited:
		return "legacy-limited"
	case RFC3820:
		return "rfc3820"
	case RFC3820Limited:
		return "rfc3820-limited"
	case RFC3820Independent:
		return "rfc3820-independent"
	case RFC3820Restricted:
		return "rfc3820-restricted"
	default:
		return fmt.Sprintf("proxy.Type(%d)", int(t))
	}
}

// DefaultLifetime is the proxy lifetime used when Options.Lifetime is zero:
// 12 hours, the grid-proxy-init default the paper describes ("on the order
// of hours or days", §2.3).
const DefaultLifetime = 12 * time.Hour

// Options controls proxy certificate creation.
type Options struct {
	Type     Type
	Lifetime time.Duration // 0 selects DefaultLifetime; clamped to issuer validity

	// KeyAlgorithm selects the algorithm for the proxy key pair (New only);
	// the zero value is RSA, the paper-fidelity default.
	KeyAlgorithm pki.KeyAlgorithm
	// KeyBits is the RSA modulus size (New only); 0 selects
	// pki.DefaultKeyBits. Ignored for non-RSA algorithms.
	KeyBits int

	// KeySource, when non-nil, supplies the key pair for New (typically a
	// keypool.Pool). nil generates synchronously.
	KeySource KeySource

	// PathLenConstraint limits further delegation below the new proxy
	// (RFC 3820 pCPathLenConstraint); nil means unlimited. Use PathLen(0)
	// to forbid any further delegation. Only meaningful for RFC3820* types.
	PathLenConstraint *int

	// RestrictedOps lists operations a RFC3820Restricted proxy may perform,
	// e.g. {"job-submit", "file-read"}. Ignored for other types.
	RestrictedOps []string
}

// Unlimited is the CertInfo.PathLenConstraint value meaning "no constraint".
const Unlimited = -1

// PathLen returns a pointer to n, for Options.PathLenConstraint.
func PathLen(n int) *int { return &n }

// Create signs a proxy certificate binding pub under the issuer credential.
// The issuer may itself be a proxy (delegation chaining, paper §2.4). The
// returned certificate's subject is the issuer's subject plus one CN
// component, per the GSI/RFC-3820 naming discipline.
func Create(issuer *pki.Credential, pub crypto.PublicKey, opts Options) (*x509.Certificate, error) {
	if issuer == nil || issuer.Certificate == nil || issuer.PrivateKey == nil {
		return nil, errors.New("proxy: issuer credential incomplete")
	}
	if pub == nil {
		return nil, errors.New("proxy: nil public key")
	}
	if _, ok := pki.AlgorithmOf(pub); !ok {
		return nil, errors.New("proxy: unsupported public key algorithm")
	}
	if issuer.Certificate.IsCA {
		return nil, errors.New("proxy: a CA certificate must not issue proxies")
	}
	if ku := issuer.Certificate.KeyUsage; ku != 0 && ku&x509.KeyUsageDigitalSignature == 0 {
		return nil, errors.New("proxy: issuer certificate lacks digitalSignature key usage")
	}
	// A limited proxy may only issue further limited proxies: limitation
	// is sticky (Globus semantics; services enforce the rest).
	issuerLimited, err := isLimited(issuer.Certificate)
	if err != nil {
		return nil, err
	}
	if issuerLimited && opts.Type != LegacyLimited && opts.Type != RFC3820Limited {
		return nil, errors.New("proxy: a limited proxy may only delegate limited proxies")
	}
	// Enforce the issuer's own path-length constraint at signing time too;
	// verification enforces it independently.
	if ci, ok, err := InfoFromCert(issuer.Certificate); err != nil {
		return nil, err
	} else if ok && ci.PathLenConstraint == 0 {
		return nil, errors.New("proxy: issuer proxy forbids further delegation (pathlen 0)")
	}

	lifetime := opts.Lifetime
	if lifetime <= 0 {
		lifetime = DefaultLifetime
	}
	now := time.Now()
	notBefore := now.Add(-5 * time.Minute)
	notAfter := now.Add(lifetime)
	if notAfter.After(issuer.Certificate.NotAfter) {
		// The proxy must not outlive its signer; clamp silently, as
		// grid-proxy-init does.
		notAfter = issuer.Certificate.NotAfter
	}
	if !notAfter.After(now) {
		return nil, errors.New("proxy: issuer certificate already expired")
	}

	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 63))
	if err != nil {
		return nil, fmt.Errorf("proxy: serial: %w", err)
	}

	issuerDN, err := pki.ParseRawDN(issuer.Certificate.RawSubject)
	if err != nil {
		return nil, fmt.Errorf("proxy: issuer subject: %w", err)
	}

	var cn string
	var extra []pkix.Extension
	switch opts.Type {
	case Legacy:
		cn = "proxy"
	case LegacyLimited:
		cn = "limited proxy"
	case RFC3820, RFC3820Limited, RFC3820Independent, RFC3820Restricted:
		// RFC 3820 §3.4: the CN must be unique among proxies issued by this
		// issuer; the serial number in decimal is the conventional choice.
		cn = serial.String()
		ci := &CertInfo{PathLenConstraint: Unlimited}
		if opts.PathLenConstraint != nil {
			if *opts.PathLenConstraint < 0 {
				return nil, fmt.Errorf("proxy: negative path length constraint %d", *opts.PathLenConstraint)
			}
			ci.PathLenConstraint = *opts.PathLenConstraint
		}
		switch opts.Type {
		case RFC3820:
			ci.PolicyLanguage = OIDPolicyInheritAll
		case RFC3820Limited:
			ci.PolicyLanguage = OIDPolicyLimited
		case RFC3820Independent:
			ci.PolicyLanguage = OIDPolicyIndependent
		case RFC3820Restricted:
			ci.PolicyLanguage = OIDPolicyRestrictedOps
			ci.Policy = encodeOps(opts.RestrictedOps)
		}
		ext, err := ci.Extension()
		if err != nil {
			return nil, err
		}
		extra = append(extra, ext)
	default:
		return nil, fmt.Errorf("proxy: unknown proxy type %d", int(opts.Type))
	}

	rawSubject, err := issuerDN.WithCN(cn).Marshal()
	if err != nil {
		return nil, err
	}

	// RFC 3820 §3.6: digitalSignature is required for further delegation.
	// keyEncipherment supports RSA key exchange in the era-appropriate SSL
	// cipher suites; asserting it on a signature-only key (ECDSA, Ed25519)
	// would be wrong per RFC 5280.
	keyUsage := x509.KeyUsageDigitalSignature
	if _, isRSA := pub.(*rsa.PublicKey); isRSA {
		keyUsage |= x509.KeyUsageKeyEncipherment
	}
	tmpl := &x509.Certificate{
		SerialNumber:    serial,
		RawSubject:      rawSubject,
		NotBefore:       notBefore,
		NotAfter:        notAfter,
		KeyUsage:        keyUsage,
		ExtraExtensions: extra,
		// RFC 3820 §3.7: proxies MUST NOT carry basicConstraints CA=true.
		// We omit basicConstraints entirely, matching Globus output.
		BasicConstraintsValid: false,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, issuer.Certificate, pub, issuer.PrivateKey)
	if err != nil {
		return nil, fmt.Errorf("proxy: sign proxy certificate: %w", err)
	}
	return x509.ParseCertificate(der)
}

// New generates a fresh key pair and creates a proxy credential signed by
// issuer, with the chain extended so the result is self-contained:
// chain = issuer certificate + issuer's chain. This is what
// grid-proxy-init does locally (paper §2.3).
func New(issuer *pki.Credential, opts Options) (*pki.Credential, error) {
	spec := pki.KeySpec{Algorithm: opts.KeyAlgorithm, Bits: opts.KeyBits}
	var key crypto.Signer
	var err error
	if opts.KeySource != nil {
		key, err = opts.KeySource.Get(context.Background(), spec)
	} else {
		key, err = pki.GenerateSigner(spec)
	}
	if err != nil {
		return nil, err
	}
	cert, err := Create(issuer, key.Public(), opts)
	if err != nil {
		return nil, err
	}
	chain := make([]*x509.Certificate, 0, 1+len(issuer.Chain))
	chain = append(chain, issuer.Certificate)
	chain = append(chain, issuer.Chain...)
	return &pki.Credential{Certificate: cert, PrivateKey: key, Chain: chain}, nil
}

// isLimited reports whether cert is a limited proxy in either style.
func isLimited(cert *x509.Certificate) (bool, error) {
	if ci, ok, err := InfoFromCert(cert); err != nil {
		return false, err
	} else if ok {
		return ci.PolicyLanguage.Equal(OIDPolicyLimited), nil
	}
	dn, err := pki.ParseRawDN(cert.RawSubject)
	if err != nil {
		return false, err
	}
	return len(dn) > 0 && dn[len(dn)-1] == pki.RDN{Type: "CN", Value: "limited proxy"}, nil
}
