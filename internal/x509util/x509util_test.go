package x509util

import (
	"crypto/x509"
	"testing"

	"repro/internal/testpki"
)

func verifyOpts(pool *x509.CertPool) x509.VerifyOptions {
	return x509.VerifyOptions{Roots: pool, KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageAny}}
}

func TestPoolOf(t *testing.T) {
	ca := testpki.CA(t).Certificate()
	pool := PoolOf(ca, nil)
	if pool == nil {
		t.Fatal("nil pool")
	}
	// The pool must actually contain the certificate: a chain signed by
	// the CA verifies against it.
	user := testpki.User(t, "poolof-user")
	//myproxy:allow rawverify EEC-to-CA chain with no proxies; asserts the pool contents, not proxy validation
	if _, err := user.Certificate.Verify(verifyOpts(pool)); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if empty := PoolOf(); empty == nil {
		t.Error("empty PoolOf returned nil")
	}
}
