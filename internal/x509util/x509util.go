// Package x509util holds small certificate-pool helpers shared by tests,
// tools, and examples.
package x509util

import "crypto/x509"

// PoolOf builds a CertPool containing the given certificates.
func PoolOf(certs ...*x509.Certificate) *x509.CertPool {
	pool := x509.NewCertPool()
	for _, c := range certs {
		if c != nil {
			pool.AddCert(c)
		}
	}
	return pool
}
