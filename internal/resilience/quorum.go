package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

// Quorum classification for replicated writes (DESIGN.md §12): a credential
// mutation fanned out to R replicas has three possible outcomes, and each
// maps onto this package's existing error vocabulary.
//
//   - Acks >= Need: the write is committed; enough replicas durably hold it.
//   - Every replica delivered a definitive rejection (an authorization
//     failure, a bad pass phrase, a policy veto): the verdict is unanimous
//     and retrying cannot change it — Permanent.
//   - Anything in between — some acks but not enough, or transport faults
//     mixed with rejections: one or more replicas may hold the write while
//     others provably do not. That is exactly post-commit ambiguity. For
//     idempotent-for-this-caller writes (PUT, STORE) the ambiguity is
//     retry-safe: replaying converges the replicas. For DESTROY it never
//     is — a replay can report a spurious "not found" or remove a deposit
//     that landed in between.

// QuorumOutcome aggregates one replicated fan-out for classification.
type QuorumOutcome struct {
	// Op names the replicated operation (e.g. "PUT", "DESTROY").
	Op string
	// Need is the acknowledgement quorum required to call the write
	// committed.
	Need int
	// Acks is the number of replicas that confirmed the write.
	Acks int
	// Errs holds one error per failed replica (transport faults, server
	// rejections — in any mix).
	Errs []error
	// RetrySafe marks Op as idempotent for this caller (PUT/STORE yes,
	// DESTROY/CHANGE_PASSPHRASE no); it selects which flavor of ambiguity
	// a partial quorum produces.
	RetrySafe bool
}

// Classify reduces the outcome to nil (quorum reached), a Permanent error
// (unanimous definitive rejection), or an AmbiguousError (partial quorum).
func (q QuorumOutcome) Classify() error {
	if q.Acks >= q.Need {
		return nil
	}
	if q.Acks == 0 && len(q.Errs) > 0 && allPermanent(q.Errs) {
		// Every replica said no, definitively. Surface the first verdict
		// (they agree in kind) with the quorum context attached.
		return Permanent(fmt.Errorf("resilience: %s rejected by all %d replica(s): %w", q.Op, len(q.Errs), q.Errs[0]))
	}
	err := fmt.Errorf("resilience: %s acknowledged by %d/%d replica(s): %s", q.Op, q.Acks, q.Need, joinErrs(q.Errs))
	if q.RetrySafe {
		return AmbiguousRetryable(q.Op, err)
	}
	return Ambiguous(q.Op, err)
}

func allPermanent(errs []error) bool {
	for _, e := range errs {
		if !IsPermanent(e) {
			return false
		}
	}
	return true
}

func joinErrs(errs []error) string {
	if len(errs) == 0 {
		return "no replica errors"
	}
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.Error()
	}
	return strings.Join(parts, "; ")
}

// FirstPermanent returns the first error in errs carrying the Permanent
// marker, or nil. Replicated reads use it to distinguish a definitive
// server verdict (report it, do not fail over) from transport noise.
func FirstPermanent(errs []error) error {
	for _, e := range errs {
		if IsPermanent(e) {
			return e
		}
	}
	return nil
}

// Unavailable reports whether err looks like replica unavailability — any
// failure that is neither a Permanent verdict nor ambiguity. Context
// cancellation is excluded: the caller gave up, the replica did not fail.
func Unavailable(err error) bool {
	if err == nil || IsPermanent(err) || IsAmbiguous(err) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}
