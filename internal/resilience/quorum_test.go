package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var (
	errConn   = errors.New("connection refused")
	errDenied = errors.New("authorization failed")
)

func TestQuorumReached(t *testing.T) {
	err := QuorumOutcome{Op: "PUT", Need: 2, Acks: 2, Errs: []error{errConn}, RetrySafe: true}.Classify()
	if err != nil {
		t.Fatalf("quorum reached: got %v, want nil", err)
	}
	// Over-achievement is equally fine.
	if err := (QuorumOutcome{Op: "PUT", Need: 1, Acks: 3}).Classify(); err != nil {
		t.Fatalf("over-quorum: got %v", err)
	}
}

func TestQuorumFullRejectionIsPermanent(t *testing.T) {
	err := QuorumOutcome{
		Op:   "PUT",
		Need: 2,
		Acks: 0,
		Errs: []error{Permanent(errDenied), Permanent(errDenied)},
	}.Classify()
	if err == nil {
		t.Fatal("full rejection classified as success")
	}
	if !IsPermanent(err) {
		t.Errorf("full rejection: got %v, want Permanent", err)
	}
	if IsAmbiguous(err) {
		t.Errorf("full rejection must not be ambiguous: %v", err)
	}
	if !errors.Is(err, errDenied) {
		t.Errorf("underlying verdict lost: %v", err)
	}
}

func TestQuorumPartialPutIsRetrySafeAmbiguous(t *testing.T) {
	// One replica holds the credential, the other is unreachable: the
	// write may be half-committed — ambiguous, but a PUT replay converges.
	err := QuorumOutcome{Op: "PUT", Need: 2, Acks: 1, Errs: []error{errConn}, RetrySafe: true}.Classify()
	if !IsAmbiguous(err) {
		t.Fatalf("partial PUT: got %v, want ambiguous", err)
	}
	if !IsRetrySafe(err) {
		t.Errorf("partial PUT must be retry-safe: %v", err)
	}
}

func TestQuorumPartialDestroyIsNeverRetrySafe(t *testing.T) {
	err := QuorumOutcome{Op: "DESTROY", Need: 2, Acks: 1, Errs: []error{errConn}, RetrySafe: false}.Classify()
	if !IsAmbiguous(err) {
		t.Fatalf("partial DESTROY: got %v, want ambiguous", err)
	}
	if IsRetrySafe(err) {
		t.Errorf("partial DESTROY must not be retry-safe: %v", err)
	}
}

func TestQuorumMixedRejectionAndFaultIsAmbiguous(t *testing.T) {
	// A definitive rejection from one replica plus a transport fault from
	// the other is NOT a unanimous verdict: the faulted replica may have
	// committed before the connection died.
	err := QuorumOutcome{
		Op:   "CHANGE_PASSPHRASE",
		Need: 2,
		Acks: 0,
		Errs: []error{Permanent(errDenied), errConn},
	}.Classify()
	if !IsAmbiguous(err) {
		t.Fatalf("mixed outcome: got %v, want ambiguous", err)
	}
	if IsPermanent(err) {
		t.Errorf("mixed outcome must not be permanent: %v", err)
	}
}

func TestPolicyRetriesRetrySafeAmbiguity(t *testing.T) {
	attempts := 0
	pol := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := pol.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts < 3 {
			return AmbiguousRetryable("PUT", errConn)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retry-safe ambiguity not retried to success: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
}

func TestPolicyStopsOnPlainAmbiguity(t *testing.T) {
	attempts := 0
	pol := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := pol.Do(context.Background(), func(context.Context) error {
		attempts++
		return Ambiguous("DESTROY", errConn)
	})
	if !IsAmbiguous(err) {
		t.Fatalf("got %v, want ambiguous", err)
	}
	if attempts != 1 {
		t.Errorf("plain ambiguity retried: attempts = %d, want 1", attempts)
	}
}

func TestFirstPermanentAndUnavailable(t *testing.T) {
	if got := FirstPermanent([]error{errConn, Permanent(errDenied)}); !errors.Is(got, errDenied) {
		t.Errorf("FirstPermanent: got %v", got)
	}
	if got := FirstPermanent([]error{errConn}); got != nil {
		t.Errorf("FirstPermanent without permanent: got %v", got)
	}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errConn, true},
		{Permanent(errDenied), false},
		{Ambiguous("PUT", errConn), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
	}
	for _, c := range cases {
		if got := Unavailable(c.err); got != c.want {
			t.Errorf("Unavailable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
