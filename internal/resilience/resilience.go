// Package resilience implements the retry/backoff layer the repository's
// clients sit on. The paper treats MyProxy as always-on infrastructure
// (§3: "the repository must be highly available; a failure denies users
// access to the Grid"); in practice availability is built from two halves —
// a server that degrades gracefully, and clients that ride out transient
// faults instead of failing the portal login on the first dropped packet.
// This package is the client half: an exponential-backoff retry policy with
// jitter, per-attempt timeout budgets, context-aware cancellation, and an
// explicit vocabulary for the two kinds of non-retryable failure —
// permanent errors (the server said no) and ambiguous errors (a mutation
// may or may not have committed).
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy parameterizes retries. The zero value performs exactly one attempt
// (no behavior change for callers that never opted in).
type Policy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (0 = 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = 5s).
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries (0 = 2).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]
	// (0 = 0.5): delay' = delay * (1 - Jitter + Jitter*rand). Jitter
	// decorrelates the retry storms of many clients hitting one repository
	// after a shared fault.
	Jitter float64
	// PerAttemptTimeout, when positive, bounds each attempt with its own
	// context deadline, so one black-holed connection cannot consume the
	// whole operation budget.
	PerAttemptTimeout time.Duration

	// OnRetry, when non-nil, observes every scheduled retry (stats,
	// logging). attempt is the 1-based number of the attempt that failed.
	OnRetry func(attempt int, err error, backoff time.Duration)

	// Sleep replaces the backoff sleep (tests); nil selects a
	// context-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Rand replaces the jitter source (tests); nil selects a shared
	// seeded source.
	Rand func() float64
}

// sharedRand backs the default jitter source; rand.Rand is not
// concurrency-safe, so guard it.
var (
	randMu sync.Mutex
	//myproxy:guardedby randMu
	sharedRand = rand.New(rand.NewSource(time.Now().UnixNano())) //myproxy:allow weakrand backoff jitter decorrelates retry storms; not key material
)

func defaultRand() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return sharedRand.Float64()
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying and returns it (unwrapped) as-is.
// Use it for definitive server verdicts: authorization failures, bad pass
// phrases, policy rejections — retrying cannot change the answer.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// AmbiguousError reports a mutation whose outcome is unknown: the request
// reached (or may have reached) the repository, the commit may have
// happened, and the confirmation was lost. Retrying blindly could destroy a
// freshly stored credential or double-apply a pass-phrase change, so Do
// surfaces the ambiguity to the caller instead (who can Info/inspect and
// decide).
type AmbiguousError struct {
	// Op names the operation left in doubt (e.g. "PUT", "DESTROY").
	Op string
	// Err is the transport failure that interrupted the confirmation.
	Err error
	// RetrySafe marks ambiguity that is nonetheless safe to replay: the
	// operation is idempotent *for the same caller* — re-sending a PUT
	// overwrites the caller's own deposit with the same content, so an
	// unknown outcome costs nothing to resolve by retrying. A DESTROY is
	// never retry-safe (a replay reports a spurious "not found", or worse,
	// removes a deposit that landed between the attempts). Policy.Do
	// retries retry-safe ambiguity and surfaces the rest.
	RetrySafe bool
}

func (e *AmbiguousError) Error() string {
	return fmt.Sprintf("resilience: %s outcome unknown (connection failed after the request may have committed): %v", e.Op, e.Err)
}

func (e *AmbiguousError) Unwrap() error { return e.Err }

// Ambiguous wraps err as an AmbiguousError for op. A nil err returns nil.
func Ambiguous(op string, err error) error {
	if err == nil {
		return nil
	}
	return &AmbiguousError{Op: op, Err: err}
}

// AmbiguousRetryable wraps err as retry-safe ambiguity (see
// AmbiguousError.RetrySafe). A nil err returns nil.
func AmbiguousRetryable(op string, err error) error {
	if err == nil {
		return nil
	}
	return &AmbiguousError{Op: op, Err: err, RetrySafe: true}
}

// IsAmbiguous reports whether err carries post-commit ambiguity.
func IsAmbiguous(err error) bool {
	var ae *AmbiguousError
	return errors.As(err, &ae)
}

// IsRetrySafe reports whether err is ambiguity marked safe to replay.
func IsRetrySafe(err error) bool {
	var ae *AmbiguousError
	return errors.As(err, &ae) && ae.RetrySafe
}

// Backoff returns the backoff before retry number retry (0-based), without
// jitter applied.
func (p Policy) Backoff(retry int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < retry; i++ {
		d *= mult
		if d >= float64(maxDelay) {
			return maxDelay
		}
	}
	if d > float64(maxDelay) {
		return maxDelay
	}
	return time.Duration(d)
}

// jittered applies the policy's jitter fraction to d.
func (p Policy) jittered(d time.Duration) time.Duration {
	j := p.Jitter
	if j == 0 {
		j = 0.5
	}
	if j < 0 {
		j = 0
	}
	if j > 1 {
		j = 1
	}
	rnd := p.Rand
	if rnd == nil {
		rnd = defaultRand
	}
	f := 1 - j + j*rnd()
	return time.Duration(float64(d) * f)
}

func (p Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs op under the policy. Transient failures are retried with
// exponential backoff and jitter until MaxAttempts is exhausted or ctx is
// done; errors wrapped by Permanent or Ambiguous stop immediately.
// Each attempt runs under its own PerAttemptTimeout (when set), always
// bounded by ctx. The returned error is the last attempt's, annotated with
// the attempt count when more than one was made (the underlying error
// remains reachable through errors.Is/As).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if ctx.Err() != nil {
			if err != nil {
				return fmt.Errorf("resilience: %w (interrupted: %v)", err, ctx.Err()) //myproxy:allow errwrap classification must track the primary op error, not the interrupt
			}
			return ctx.Err()
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		// Ambiguity stops retries — unless it is explicitly retry-safe
		// (an idempotent-for-this-caller write such as PUT), which rides
		// the normal backoff like any transient fault.
		if IsAmbiguous(err) && !IsRetrySafe(err) {
			return err
		}
		if attempt >= attempts {
			if attempt > 1 {
				return fmt.Errorf("resilience: after %d attempts: %w", attempt, err)
			}
			return err
		}
		backoff := p.jittered(p.Backoff(attempt - 1))
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, backoff)
		}
		if serr := p.sleep(ctx, backoff); serr != nil {
			return fmt.Errorf("resilience: %w (interrupted: %v)", err, serr) //myproxy:allow errwrap classification must track the primary op error, not the interrupt
		}
	}
}
