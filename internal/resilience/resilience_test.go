package resilience

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// fastPolicy retries promptly and records sleeps instead of taking them.
func fastPolicy(attempts int, slept *[]time.Duration) Policy {
	return Policy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Jitter:      1, // fully randomized...
		Rand:        func() float64 { return 1 }, // ...but pinned for determinism
		Sleep: func(ctx context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return ctx.Err()
		},
	}
}

func TestZeroValueRunsOnce(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	err := Policy{}.Do(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := fastPolicy(5, &slept).Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Exponential: 10ms then 20ms (jitter pinned to identity).
	if len(slept) != 2 || slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Errorf("backoffs = %v", slept)
	}
}

func TestExhaustionAnnotatesAttemptCount(t *testing.T) {
	boom := errors.New("still down")
	err := fastPolicy(3, nil).Do(context.Background(), func(context.Context) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("underlying error lost: %v", err)
	}
	if got := err.Error(); !errors.Is(err, boom) || !contains(got, "3 attempts") {
		t.Errorf("err = %q", got)
	}
}

func TestPermanentStopsImmediately(t *testing.T) {
	calls := 0
	denied := errors.New("authorization failed")
	err := fastPolicy(5, nil).Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(denied)
	})
	if calls != 1 {
		t.Errorf("permanent error retried: %d calls", calls)
	}
	// The marker is stripped: callers see the original error text.
	if err == nil || err.Error() != "authorization failed" {
		t.Errorf("err = %v", err)
	}
	if !errors.Is(err, denied) {
		t.Error("errors.Is lost")
	}
}

func TestAmbiguousStopsImmediately(t *testing.T) {
	calls := 0
	drop := errors.New("connection reset")
	err := fastPolicy(5, nil).Do(context.Background(), func(context.Context) error {
		calls++
		return Ambiguous("DESTROY", drop)
	})
	if calls != 1 {
		t.Errorf("ambiguous error retried: %d calls", calls)
	}
	if !IsAmbiguous(err) {
		t.Fatalf("ambiguity not surfaced: %v", err)
	}
	var ae *AmbiguousError
	if !errors.As(err, &ae) || ae.Op != "DESTROY" || !errors.Is(err, drop) {
		t.Errorf("err = %#v", err)
	}
	if !contains(err.Error(), "outcome unknown") {
		t.Errorf("message = %q", err.Error())
	}
}

func TestContextCancelStopsRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{
		MaxAttempts: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // cancelled while backing off
			return ctx.Err()
		},
	}
	err := p.Do(ctx, func(context.Context) error {
		calls++
		return errors.New("transient")
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if err == nil || !contains(err.Error(), "interrupted") {
		t.Errorf("err = %v", err)
	}
}

func TestPerAttemptTimeout(t *testing.T) {
	p := Policy{
		MaxAttempts:       2,
		PerAttemptTimeout: 20 * time.Millisecond,
		Sleep:             func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
	deadlines := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		dl, ok := ctx.Deadline()
		if !ok {
			t.Fatal("attempt context has no deadline")
		}
		if time.Until(dl) > 25*time.Millisecond {
			t.Errorf("deadline too far: %v", time.Until(dl))
		}
		deadlines++
		<-ctx.Done() // the attempt blocks until its budget expires
		return ctx.Err()
	})
	if deadlines != 2 {
		t.Errorf("attempts = %d, want 2", deadlines)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v", err)
	}
}

func TestBackoffCapsAtMaxDelay(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{10, 20, 35, 35}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestJitterStaysInRange(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5}
	for _, r := range []float64{0, 0.25, 0.5, 1} {
		p.Rand = func() float64 { return r }
		d := p.jittered(p.Backoff(0))
		lo, hi := 50*time.Millisecond, 100*time.Millisecond
		if d < lo || d > hi {
			t.Errorf("jittered(rand=%v) = %v outside [%v, %v]", r, d, lo, hi)
		}
	}
}

func TestOnRetryObserves(t *testing.T) {
	var seen []int
	p := fastPolicy(3, nil)
	p.OnRetry = func(attempt int, err error, backoff time.Duration) {
		seen = append(seen, attempt)
	}
	p.Do(context.Background(), func(context.Context) error { return errors.New("x") })
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("OnRetry attempts = %v", seen)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
