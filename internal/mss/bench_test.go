package mss

import (
	"crypto/x509"
	"net"
	"testing"
	"time"

	"repro/internal/gsi"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// BenchmarkPutGet measures one store + fetch round trip over an
// established GSI session — the data-plane cost of the §2.4 scenario.
func BenchmarkPutGet(b *testing.B) {
	pool := x509.NewCertPool()
	pool.AddCert(testpki.CA(b).Certificate())
	gridmap := gsi.NewGridmap()
	gridmap.Add(testpki.User(b, "mss-bench").Subject(), "bench")
	srv, err := NewServer(Config{
		Credential: testpki.Host(b, "mss.test"),
		Roots:      pool,
		Gridmap:    gridmap,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	b.Cleanup(func() { srv.Close() })

	p, err := proxy.New(testpki.User(b, "mss-bench"), proxy.Options{Lifetime: time.Hour, KeyBits: 1024})
	if err != nil {
		b.Fatal(err)
	}
	cli := &Client{Credential: p, Roots: pool, Addr: ln.Addr().String()}
	b.Cleanup(func() { cli.Close() })
	payload := make([]byte, 4096)
	b.SetBytes(int64(len(payload) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.Put("bench-object", payload); err != nil {
			b.Fatal(err)
		}
		if _, err := cli.Get("bench-object"); err != nil {
			b.Fatal(err)
		}
	}
}
