package mss

import (
	"bytes"
	"crypto/x509"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/gsi"
	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

func testRoots(t *testing.T) *x509.CertPool {
	t.Helper()
	pool := x509.NewCertPool()
	pool.AddCert(testpki.CA(t).Certificate())
	return pool
}

func startMSS(t *testing.T, gridmap *gsi.Gridmap) (*Server, string) {
	t.Helper()
	srv, err := NewServer(Config{
		Credential: testpki.Host(t, "mss.test"),
		Roots:      testRoots(t),
		Gridmap:    gridmap,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func defaultGridmap(t *testing.T) *gsi.Gridmap {
	t.Helper()
	g := gsi.NewGridmap()
	g.Add(testpki.User(t, "mss-alice").Subject(), "alice")
	return g
}

func newMSSClient(t *testing.T, cred *pki.Credential, addr string) *Client {
	t.Helper()
	c := &Client{
		Credential:     cred,
		Roots:          testRoots(t),
		Addr:           addr,
		ExpectedServer: "*/CN=mss.test",
		Timeout:        10 * time.Second,
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPutGetListDelete(t *testing.T) {
	_, addr := startMSS(t, defaultGridmap(t))
	alice := testpki.User(t, "mss-alice")
	c := newMSSClient(t, alice, addr)

	if err := c.Put("results.dat", []byte("simulation output")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := c.Put("notes.txt", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := c.Get("results.dat")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(data, []byte("simulation output")) {
		t.Errorf("Get = %q", data)
	}
	names, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "notes.txt" {
		t.Errorf("List = %v", names)
	}
	if err := c.Delete("notes.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("notes.txt"); err == nil {
		t.Error("deleted object retrievable")
	}
	if err := c.Delete("notes.txt"); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestUnmappedIdentityRefused(t *testing.T) {
	_, addr := startMSS(t, defaultGridmap(t))
	bob := testpki.User(t, "mss-bob") // not in gridmap
	c := newMSSClient(t, bob, addr)
	if err := c.Put("x", []byte("y")); err == nil || !strings.Contains(err.Error(), "gridmap") {
		t.Fatalf("unmapped identity: %v", err)
	}
}

func TestProxyAuthenticatesAsUser(t *testing.T) {
	srv, addr := startMSS(t, defaultGridmap(t))
	alice := testpki.User(t, "mss-alice")
	p, err := proxy.New(alice, proxy.Options{Type: proxy.RFC3820, Lifetime: time.Hour, KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := newMSSClient(t, p, addr)
	if err := c.Put("via-proxy", []byte("data")); err != nil {
		t.Fatalf("Put via proxy: %v", err)
	}
	if got := srv.Objects("alice"); len(got) != 1 || got[0] != "via-proxy" {
		t.Errorf("Objects = %v", got)
	}
}

func TestRestrictedProxyOps(t *testing.T) {
	// Experiment E12: restricted delegation (paper §6.5).
	_, addr := startMSS(t, defaultGridmap(t))
	alice := testpki.User(t, "mss-alice")

	readOnly, err := proxy.New(alice, proxy.Options{
		Type: proxy.RFC3820Restricted, Lifetime: time.Hour, KeyBits: 1024,
		RestrictedOps: []string{proxy.OpFileRead},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed an object with a full proxy first.
	full := newMSSClient(t, alice, addr)
	if err := full.Put("seeded", []byte("content")); err != nil {
		t.Fatal(err)
	}

	ro := newMSSClient(t, readOnly, addr)
	if _, err := ro.Get("seeded"); err != nil {
		t.Errorf("read with read-only proxy failed: %v", err)
	}
	if err := ro.Put("new", []byte("nope")); err == nil || !strings.Contains(err.Error(), "forbids file-write") {
		t.Errorf("write with read-only proxy: %v", err)
	}
	if err := ro.Delete("seeded"); err == nil {
		t.Error("delete with read-only proxy succeeded")
	}
}

func TestLimitedProxyCanStillWriteData(t *testing.T) {
	// Limited proxies are barred from starting jobs, not from data access
	// (Globus semantics).
	_, addr := startMSS(t, defaultGridmap(t))
	alice := testpki.User(t, "mss-alice")
	lim, err := proxy.New(alice, proxy.Options{Type: proxy.RFC3820Limited, Lifetime: time.Hour, KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := newMSSClient(t, lim, addr)
	if err := c.Put("from-limited", []byte("ok")); err != nil {
		t.Errorf("limited proxy write refused: %v", err)
	}
}

func TestObjectSizeLimit(t *testing.T) {
	srv, err := NewServer(Config{
		Credential:     testpki.Host(t, "mss.test"),
		Roots:          testRoots(t),
		Gridmap:        defaultGridmap(t),
		MaxObjectBytes: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c := newMSSClient(t, testpki.User(t, "mss-alice"), ln.Addr().String())
	if err := c.Put("big", bytes.Repeat([]byte{1}, 11)); err == nil {
		t.Error("oversized object accepted")
	}
	if err := c.Put("ok", bytes.Repeat([]byte{1}, 10)); err != nil {
		t.Errorf("at-limit object refused: %v", err)
	}
}

func TestAccountIsolation(t *testing.T) {
	g := defaultGridmap(t)
	g.Add(testpki.User(t, "mss-bob").Subject(), "bob")
	_, addr := startMSS(t, g)
	alice := newMSSClient(t, testpki.User(t, "mss-alice"), addr)
	bob := newMSSClient(t, testpki.User(t, "mss-bob"), addr)
	if err := alice.Put("secret", []byte("alice's data")); err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Get("secret"); err == nil {
		t.Fatal("cross-account read succeeded")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
