// Package mss implements a GSI-protected mass storage system, the paper's
// canonical delegation consumer (§2.4: "a user's job that needs to be able
// to authenticate as the user to mass storage system to store the result of
// a long computation").
//
// The service authenticates clients over a GSI channel, maps the Grid
// identity to a local namespace with a gridmap, honors proxy policy
// restrictions (file-read/file-write operations), and stores objects
// per-account.
package mss

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"crypto/x509"

	"repro/internal/gsi"
	"repro/internal/pki"
	"repro/internal/proxy"
)

// Request is one storage operation.
type Request struct {
	Op   string `json:"op"` // "put", "get", "list", "delete"
	Name string `json:"name,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// Reply is the server's answer.
type Reply struct {
	OK    bool     `json:"ok"`
	Error string   `json:"error,omitempty"`
	Data  []byte   `json:"data,omitempty"`
	Names []string `json:"names,omitempty"`
}

// Config configures a storage server.
type Config struct {
	Credential *pki.Credential
	Roots      *x509.CertPool
	// Gridmap maps client DNs to local accounts; unmapped identities are
	// refused (paper §2.1).
	Gridmap *gsi.Gridmap
	// MaxObjectBytes bounds one stored object (0 = 256 KiB).
	MaxObjectBytes int
	// SessionTimeout bounds one client session (0 = 30s).
	SessionTimeout time.Duration
}

// Server is an in-memory mass storage service.
type Server struct {
	cfg Config

	mu      sync.Mutex
	objects map[string]map[string][]byte // account -> name -> data

	lnMu      sync.Mutex
	listeners map[net.Listener]struct{}
	conns     sync.WaitGroup
	closed    bool
}

// NewServer builds a storage server.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Credential == nil {
		return nil, errors.New("mss: credential required")
	}
	if cfg.Roots == nil {
		return nil, errors.New("mss: roots required")
	}
	if cfg.Gridmap == nil {
		return nil, errors.New("mss: gridmap required")
	}
	return &Server{
		cfg:       cfg,
		objects:   make(map[string]map[string][]byte),
		listeners: make(map[net.Listener]struct{}),
	}, nil
}

// Serve accepts sessions until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.lnMu.Unlock()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handle(raw)
		}()
	}
}

// Close stops the server and waits for sessions to finish.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	s.lnMu.Unlock()
	s.conns.Wait()
	return nil
}

// Objects returns a snapshot of one account's stored object names (tests).
func (s *Server) Objects(account string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	for name := range s.objects[account] {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *Server) handle(raw net.Conn) {
	timeout := s.cfg.SessionTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := gsi.Server(raw, s.cfg.Credential, gsi.AuthOptions{
		Roots:            s.cfg.Roots,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		return
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	account, ok := s.cfg.Gridmap.Lookup(conn.PeerIdentity())
	if !ok {
		writeReply(conn, &Reply{Error: "identity not in gridmap"})
		return
	}
	// One session may carry several operations.
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var req Request
		if err := json.Unmarshal(msg, &req); err != nil {
			writeReply(conn, &Reply{Error: "malformed request"})
			return
		}
		reply := s.dispatch(account, conn.Peer, &req)
		if err := writeReply(conn, reply); err != nil {
			return
		}
	}
}

func writeReply(conn *gsi.Conn, r *Reply) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	return conn.WriteMessage(data)
}

func (s *Server) dispatch(account string, peer *proxy.Result, req *Request) *Reply {
	maxBytes := s.cfg.MaxObjectBytes
	if maxBytes <= 0 {
		maxBytes = 256 << 10
	}
	switch req.Op {
	case "put":
		// Writing requires the file-write right; limited proxies may
		// write (they are only barred from starting processes), but
		// restricted proxies must list the operation (paper §6.5).
		if !peer.Permits(proxy.OpFileWrite) {
			return &Reply{Error: "proxy policy forbids file-write"}
		}
		if req.Name == "" {
			return &Reply{Error: "object name required"}
		}
		if len(req.Data) > maxBytes {
			return &Reply{Error: fmt.Sprintf("object exceeds %d bytes", maxBytes)}
		}
		s.mu.Lock()
		if s.objects[account] == nil {
			s.objects[account] = make(map[string][]byte)
		}
		s.objects[account][req.Name] = append([]byte(nil), req.Data...)
		s.mu.Unlock()
		return &Reply{OK: true}
	case "get":
		if !peer.Permits(proxy.OpFileRead) {
			return &Reply{Error: "proxy policy forbids file-read"}
		}
		s.mu.Lock()
		data, ok := s.objects[account][req.Name]
		s.mu.Unlock()
		if !ok {
			return &Reply{Error: "no such object"}
		}
		return &Reply{OK: true, Data: append([]byte(nil), data...)}
	case "list":
		if !peer.Permits(proxy.OpFileRead) {
			return &Reply{Error: "proxy policy forbids file-read"}
		}
		return &Reply{OK: true, Names: s.Objects(account)}
	case "delete":
		if !peer.Permits(proxy.OpFileWrite) {
			return &Reply{Error: "proxy policy forbids file-write"}
		}
		s.mu.Lock()
		_, ok := s.objects[account][req.Name]
		delete(s.objects[account], req.Name)
		s.mu.Unlock()
		if !ok {
			return &Reply{Error: "no such object"}
		}
		return &Reply{OK: true}
	default:
		return &Reply{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client accesses a storage server with a Grid credential.
type Client struct {
	Credential     *pki.Credential
	Roots          *x509.CertPool
	Addr           string
	ExpectedServer string
	Timeout        time.Duration
	// DialContext overrides the transport dial (tests inject faults through
	// it; nil selects net.Dialer).
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)

	mu   sync.Mutex
	conn *gsi.Conn
}

func (c *Client) connection() (*gsi.Conn, error) {
	if c.conn != nil {
		return c.conn, nil
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	dial := c.DialContext
	if dial == nil {
		dial = (&net.Dialer{}).DialContext
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	raw, err := dial(ctx, "tcp", c.Addr)
	if err != nil {
		return nil, fmt.Errorf("mss: dial %s: %w", c.Addr, err)
	}
	conn, err := gsi.Client(raw, c.Credential, gsi.AuthOptions{
		Roots:            c.Roots,
		ExpectedPeer:     c.ExpectedServer,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	c.conn = conn
	return conn, nil
}

// Close shuts the client's session down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

func (c *Client) call(req *Request) (*Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.connection()
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	if err := conn.WriteMessage(data); err != nil {
		c.conn = nil
		return nil, err
	}
	msg, err := conn.ReadMessage()
	if err != nil {
		c.conn = nil
		return nil, err
	}
	var reply Reply
	if err := json.Unmarshal(msg, &reply); err != nil {
		return nil, err
	}
	if !reply.OK {
		return nil, fmt.Errorf("mss: %s", reply.Error)
	}
	return &reply, nil
}

// Put stores an object under the caller's account.
func (c *Client) Put(name string, data []byte) error {
	_, err := c.call(&Request{Op: "put", Name: name, Data: data})
	return err
}

// Get fetches an object.
func (c *Client) Get(name string) ([]byte, error) {
	reply, err := c.call(&Request{Op: "get", Name: name})
	if err != nil {
		return nil, err
	}
	return reply.Data, nil
}

// List names the caller's objects.
func (c *Client) List() ([]string, error) {
	reply, err := c.call(&Request{Op: "list"})
	if err != nil {
		return nil, err
	}
	return reply.Names, nil
}

// Delete removes an object.
func (c *Client) Delete(name string) error {
	_, err := c.call(&Request{Op: "delete", Name: name})
	return err
}
