package mss

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultnet"
	"repro/internal/testpki"
)

// A failed dial surfaces cleanly and the next call re-dials.
func TestClientRecoversAfterConnectFailure(t *testing.T) {
	_, addr := startMSS(t, defaultGridmap(t))
	c := newMSSClient(t, testpki.User(t, "mss-alice"), addr)
	c.DialContext = (&faultnet.Dialer{Script: faultnet.NewScript(
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect},
	)}).DialContext

	if err := c.Put("a.dat", []byte("x")); !errors.Is(err, faultnet.ErrInjectedConnect) {
		t.Fatalf("err = %v, want injected connect failure", err)
	}
	if err := c.Put("a.dat", []byte("payload")); err != nil {
		t.Fatalf("Put after failed dial: %v", err)
	}
	data, err := c.Get("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte("payload")) {
		t.Errorf("Get = %q", data)
	}
}

// Objects survive a link that fragments every write into tiny chunks.
func TestTransferOverFragmentingLink(t *testing.T) {
	_, addr := startMSS(t, defaultGridmap(t))
	c := newMSSClient(t, testpki.User(t, "mss-alice"), addr)
	c.DialContext = (&faultnet.Dialer{Script: faultnet.NewScript(
		faultnet.Plan{MaxWriteChunk: 5},
	)}).DialContext
	payload := bytes.Repeat([]byte("simulation output "), 64)
	if err := c.Put("big.dat", payload); err != nil {
		t.Fatalf("Put over fragmenting link: %v", err)
	}
	got, err := c.Get("big.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("object corrupted: %d bytes, want %d", len(got), len(payload))
	}
}

// A mid-session reset is detected, not silently swallowed: the client
// errors, then recovers on a fresh session.
func TestClientRecoversAfterMidSessionReset(t *testing.T) {
	_, addr := startMSS(t, defaultGridmap(t))
	c := newMSSClient(t, testpki.User(t, "mss-alice"), addr)
	if err := c.Put("keep.dat", []byte("stable")); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()
	if err := c.Put("lost.dat", []byte("x")); err == nil {
		t.Fatal("call on dropped session succeeded")
	}
	got, err := c.Get("keep.dat")
	if err != nil {
		t.Fatalf("Get after reconnect: %v", err)
	}
	if !bytes.Equal(got, []byte("stable")) {
		t.Errorf("Get = %q", got)
	}
}
