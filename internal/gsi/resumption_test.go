package gsi

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// sharedConfigs builds the shared client/server TLS configs that make
// session resumption possible: the server's ticket keys and the client's
// session cache both live in the config, so both sides must reuse one
// config across connections.
func sharedConfigs(t *testing.T, user, server *pki.Credential) (*tls.Config, *tls.Config) {
	t.Helper()
	cliCfg, err := NewClientTLSConfig(user, tls.NewLRUClientSessionCache(0))
	if err != nil {
		t.Fatal(err)
	}
	srvCfg, err := NewServerTLSConfig(server)
	if err != nil {
		t.Fatal(err)
	}
	return cliCfg, srvCfg
}

// dialOnce makes one client connection against ln. The resumption tests use
// real TCP (not net.Pipe) because TLS 1.3 session tickets are written by the
// server after its Finished message; net.Pipe's unbuffered writes would
// deadlock the handshake, while a TCP socket buffers them — exactly the
// production situation. The server-side error is returned separately: a
// server can reject a peer whose client-side handshake already succeeded.
func dialOnce(t *testing.T, ln net.Listener, user, server *pki.Credential, cliOpts, srvOpts AuthOptions) (cli, srv *Conn, cliErr, srvErr error) {
	t.Helper()
	type res struct {
		conn *Conn
		err  error
	}
	srvCh := make(chan res, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			srvCh <- res{nil, err}
			return
		}
		c, err := Server(raw, server, srvOpts)
		if err != nil {
			_ = raw.Close() // Server leaves raw open on handshake failure
		}
		srvCh <- res{c, err}
	}()
	raw, err := net.DialTimeout("tcp", ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cli, cliErr = Client(raw, user, cliOpts)
	if cliErr != nil {
		_ = raw.Close() // Client leaves raw open on handshake failure
	}
	sr := <-srvCh
	t.Cleanup(func() {
		if cli != nil {
			cli.Close()
		}
		if sr.conn != nil {
			sr.conn.Close()
		}
	})
	return cli, sr.conn, cliErr, sr.err
}

// drainTickets drives the client through any pending post-handshake
// messages (TLS 1.3 delivers session tickets after the handshake proper;
// the client only caches them while reading). The read deadline bounds the
// wait; the timeout itself is expected — no application data is coming.
func drainTickets(cli *Conn) {
	cli.tls.SetDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 1)
	cli.tls.Read(buf)
	cli.tls.SetDeadline(time.Time{})
}

func resumptionListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestSessionResumptionSecondConnectionResumes proves the performance
// property: with shared configs and a session cache, the second connection
// uses an abbreviated handshake — and peer identity is still verified on it.
func TestSessionResumptionSecondConnectionResumes(t *testing.T) {
	user := testpki.User(t, "gsi-resume-alice")
	server := testpki.Host(t, "myproxy.test")
	cliCfg, srvCfg := sharedConfigs(t, user, server)
	cliOpts, srvOpts := defaultOpts(t), defaultOpts(t)
	cliOpts.TLSConfig = cliCfg
	srvOpts.TLSConfig = srvCfg
	ln := resumptionListener(t)

	first, firstSrv, cliErr, srvErr := dialOnce(t, ln, user, server, cliOpts, srvOpts)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("first connection: client=%v server=%v", cliErr, srvErr)
	}
	if first.Resumed || firstSrv.Resumed {
		t.Fatal("first connection claims to be resumed")
	}
	drainTickets(first)
	first.Close()
	firstSrv.Close()

	second, secondSrv, cliErr, srvErr := dialOnce(t, ln, user, server, cliOpts, srvOpts)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("second connection: client=%v server=%v", cliErr, srvErr)
	}
	if !second.Resumed || !secondSrv.Resumed {
		t.Fatalf("second connection not resumed (client=%v server=%v)",
			second.Resumed, secondSrv.Resumed)
	}
	// Peer verification ran on the resumed connection too: the server still
	// holds alice's verified chain, not just a ticket.
	if got := secondSrv.PeerIdentity(); got != user.Subject() {
		t.Errorf("server saw peer %q after resumption, want %q", got, user.Subject())
	}
	if secondSrv.Peer == nil || secondSrv.Peer.EEC == nil {
		t.Fatal("resumed connection lost the verified peer result")
	}
}

// TestSessionResumptionStillEnforcesRevocation is the security property:
// a session ticket is not a bypass. A peer revoked between connections is
// refused even on a connection that the TLS layer resumes.
func TestSessionResumptionStillEnforcesRevocation(t *testing.T) {
	user := testpki.User(t, "gsi-resume-alice")
	server := testpki.Host(t, "myproxy.test")
	cliCfg, srvCfg := sharedConfigs(t, user, server)

	serial := user.Certificate.SerialNumber.String()
	revoked := false
	cliOpts, srvOpts := defaultOpts(t), defaultOpts(t)
	cliOpts.TLSConfig = cliCfg
	srvOpts.TLSConfig = srvCfg
	srvOpts.Cache = proxy.NewVerifyCache(0)
	srvOpts.IsRevoked = func(c *x509.Certificate) bool {
		return revoked && c.SerialNumber.String() == serial
	}
	ln := resumptionListener(t)

	// First connection: full handshake, primes ticket and verify cache.
	first, firstSrv, cliErr, srvErr := dialOnce(t, ln, user, server, cliOpts, srvOpts)
	if cliErr != nil || srvErr != nil {
		t.Fatalf("first connection: client=%v server=%v", cliErr, srvErr)
	}
	drainTickets(first)
	first.Close()
	firstSrv.Close()

	// "CRL reload": alice is revoked and the verify cache is flushed.
	revoked = true
	srvOpts.Cache.Invalidate()

	// The next connection resumes at the TLS layer — the ticket is still
	// valid — but the post-handshake chain verification must refuse it.
	_, _, _, srvErr = dialOnce(t, ln, user, server, cliOpts, srvOpts)
	if srvErr == nil {
		t.Fatal("revoked peer accepted on a resumed session")
	}
	if !strings.Contains(srvErr.Error(), "revoked") {
		t.Fatalf("rejection reason = %v, want revocation", srvErr)
	}
}
