package gsi

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/pki"
)

// Multiplexed session mode. A Session carries many concurrent protocol
// exchanges over ONE authenticated connection: each exchange runs on its
// own Stream, and frames from all streams interleave on the wire tagged
// with a stream id (see WriteStreamFrame). This removes the per-operation
// TCP+TLS handshake from the paper's Fig. 2 hot path: a portal that needs
// N delegations pays one handshake and pipelines N exchanges.
//
// Roles are asymmetric, matching the protocol: the initiating side opens
// streams (Open), the accepting side receives them (Accept). A stream is
// opened implicitly by its first frame — no open/ack round trip — so a
// pipelined exchange costs zero extra flights.
//
// Authentication happens once, at connection setup; revocation must not.
// The accepting side is expected to re-verify the peer chain (Conn's
// PeerChain, through a VerifyCache whose hits re-check revocation) before
// serving each accepted stream, so a CRL reload refuses a revoked peer on
// the very next stream of an already-open session.

// ErrSessionClosed is returned by stream and session operations after the
// session has failed or been closed.
var ErrSessionClosed = errors.New("gsi: session closed")

// Both transports satisfy Channel.
var (
	_ Channel = (*Conn)(nil)
	_ Channel = (*Stream)(nil)
)

// streamInboxSize bounds undelivered frames per stream. The protocol is
// strict request/response per stream, so more than a couple of queued
// frames means the peer is not following it.
const streamInboxSize = 16

// Session multiplexes streams over one authenticated Conn. Safe for
// concurrent use; all streams fail together when the connection does.
type Session struct {
	conn   *Conn
	client bool

	// wmu serializes stream-frame writes from concurrent streams.
	wmu sync.Mutex

	mu      sync.Mutex
	streams map[uint32]*Stream
	nextID  uint32 // initiator: next stream id to allocate
	maxSeen uint32 // acceptor: highest id seen, to refuse id reuse
	err     error  // first fatal error; set once

	accept chan *Stream
	done   chan struct{}

	// msgTimeout is inherited by new streams as their per-message read
	// budget (0 = none).
	msgTimeout time.Duration
}

// newSession wires up a session over an authenticated conn and starts the
// read loop. The caller chooses the role: the initiator opens streams, the
// acceptor receives them.
func newSession(conn *Conn, client bool) *Session {
	s := &Session{
		conn:       conn,
		client:     client,
		streams:    make(map[uint32]*Stream),
		nextID:     1,
		accept:     make(chan *Stream, 8),
		done:       make(chan struct{}),
		msgTimeout: conn.msgTimeout,
	}
	// The per-message conn deadline belongs to the single-exchange mode;
	// in mux mode concurrent streams share the transport, so progress is
	// bounded by the absolute session deadline the owner arms instead.
	conn.SetMessageTimeout(0)
	go s.readLoop()
	return s
}

// NewClientSession starts multiplexed mode on the initiating side.
func NewClientSession(conn *Conn) *Session { return newSession(conn, true) }

// NewServerSession starts multiplexed mode on the accepting side.
func NewServerSession(conn *Conn) *Session { return newSession(conn, false) }

// Conn exposes the underlying connection (peer chain re-verification,
// deadline management). The caller must not read or write raw frames on
// it while the session is live.
func (s *Session) Conn() *Conn { return s.conn }

// readLoop is the single reader: it routes each incoming frame to its
// stream, creating acceptor-side streams on first sight of a new id.
func (s *Session) readLoop() {
	for {
		id, payload, err := ReadStreamFrame(s.conn.tls, s.conn.maxFrame)
		if err != nil {
			s.fail(fmt.Errorf("gsi: session read: %w", err))
			return
		}
		if err := s.route(id, payload); err != nil {
			s.fail(err)
			return
		}
	}
}

// route delivers one frame. Frames for ids the local side has already
// released are dropped: with strict request/response streams that only
// happens in benign shutdown races, never as lost protocol state.
func (s *Session) route(id uint32, payload []byte) error {
	s.mu.Lock()
	st, ok := s.streams[id]
	if !ok && !s.client && id > s.maxSeen {
		// First frame of a new stream on the accepting side.
		s.maxSeen = id
		st = s.newStreamLocked(id)
		ok = true
		select {
		case s.accept <- st:
		default:
			s.mu.Unlock()
			return errors.New("gsi: session accept queue overflow")
		}
	}
	s.mu.Unlock()
	if !ok {
		return nil
	}
	select {
	case st.inbox <- payload:
		return nil
	default:
		// The peer pushed past the request/response discipline; a stalled
		// stream must not wedge the shared read loop.
		return fmt.Errorf("gsi: stream %d inbox overflow", id)
	}
}

func (s *Session) newStreamLocked(id uint32) *Stream {
	st := &Stream{
		s:       s,
		id:      id,
		inbox:   make(chan []byte, streamInboxSize),
		timeout: s.msgTimeout,
	}
	s.streams[id] = st
	return st
}

// Open starts a new stream (initiating side only). The stream exists on
// the peer once its first message arrives there.
func (s *Session) Open() (*Stream, error) {
	if !s.client {
		return nil, errors.New("gsi: accepting side cannot open streams")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, s.err
	}
	id := s.nextID
	s.nextID++
	return s.newStreamLocked(id), nil
}

// Accept waits for the peer to open a stream (accepting side only).
func (s *Session) Accept() (*Stream, error) {
	select {
	case st := <-s.accept:
		return st, nil
	case <-s.done:
		return nil, s.Err()
	}
}

// writeFrame sends one frame on behalf of a stream, serialized across
// streams. The write deadline is armed per frame so one stalled peer
// window cannot hold the write lock forever.
func (s *Session) writeFrame(id uint32, payload []byte) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	select {
	case <-s.done:
		return s.Err()
	default:
	}
	if s.msgTimeout > 0 {
		if err := s.conn.tls.SetWriteDeadline(time.Now().Add(s.msgTimeout)); err != nil {
			return fmt.Errorf("gsi: arm stream write deadline: %w", err)
		}
	}
	//myproxy:allow hotblock frames must serialize on wmu by design; the per-frame write deadline above bounds the hold
	if err := WriteStreamFrame(s.conn.tls, id, payload); err != nil {
		s.fail(err)
		return err
	}
	return nil
}

// release forgets a stream; later frames for its id are dropped.
func (s *Session) release(id uint32) {
	s.mu.Lock()
	delete(s.streams, id)
	s.mu.Unlock()
}

// fail records the first fatal error, closes the transport, and wakes
// every stream and pending Accept.
func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
		close(s.done)
	}
	s.mu.Unlock()
	_ = s.conn.Close() // session already failing; close is best-effort
}

// Err returns the error that ended the session (ErrSessionClosed after a
// clean Close), or nil while it is live.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close ends the session and the underlying connection. In-flight stream
// operations return ErrSessionClosed.
func (s *Session) Close() error {
	s.fail(ErrSessionClosed)
	return nil
}

// Stream is one protocol exchange's message pipe within a Session. It
// implements Channel, so delegation and the request handlers run over it
// unchanged. A Stream is used by one exchange at a time.
type Stream struct {
	s  *Session
	id uint32

	inbox chan []byte

	// timeout bounds each ReadMessage (0 = only the session bounds it).
	timeout time.Duration
}

// ID reports the stream's wire identifier.
func (st *Stream) ID() uint32 { return st.id }

// SetMessageTimeout adjusts the per-message read budget for this stream.
func (st *Stream) SetMessageTimeout(d time.Duration) { st.timeout = d }

// WriteMessage sends one framed message on this stream.
//myproxy:hotpath
func (st *Stream) WriteMessage(payload []byte) error {
	return st.s.writeFrame(st.id, payload)
}

// ReadMessage receives the next message routed to this stream.
//myproxy:hotpath
func (st *Stream) ReadMessage() ([]byte, error) {
	var timeout <-chan time.Time
	if st.timeout > 0 {
		t := time.NewTimer(st.timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case payload := <-st.inbox:
		return payload, nil
	case <-st.s.done:
		return nil, st.s.Err()
	case <-timeout:
		return nil, fmt.Errorf("gsi: stream %d read timeout after %v", st.id, st.timeout)
	}
}

// Close releases the stream. The session and its other streams continue.
func (st *Stream) Close() error {
	st.s.release(st.id)
	return nil
}

// LocalCredential returns the session's authenticated credential.
func (st *Stream) LocalCredential() *pki.Credential { return st.s.conn.Local }

// PeerIdentity returns the Grid identity authenticated at session setup.
// Acceptors re-verify the chain per stream; the identity cannot change
// mid-session.
func (st *Stream) PeerIdentity() string { return st.s.conn.PeerIdentity() }

// RemoteAddr reports the session's remote network address.
func (st *Stream) RemoteAddr() net.Addr { return st.s.conn.RemoteAddr() }
