package gsi

import (
	"bytes"
	"testing"
)

// frameBytes marshals one plain frame for the seed corpus.
func frameBytes(tb testing.TB, payload []byte) []byte {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadFrame feeds the length-prefixed frame reader arbitrary wire
// bytes. An accepted frame must respect the configured maximum and
// survive a re-frame round trip; a hostile prefix must be rejected by the
// bound check, never by exhausting memory.
func FuzzReadFrame(f *testing.F) {
	f.Add(frameBytes(f, []byte("hello")))
	f.Add(frameBytes(f, nil))
	f.Add(frameBytes(f, bytes.Repeat([]byte{0xab}, 1000)))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'}) // truncated body
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 16
		payload, err := ReadFrame(bytes.NewReader(data), max)
		if err != nil {
			return
		}
		if len(payload) > max {
			t.Fatalf("accepted frame of %d bytes past max %d", len(payload), max)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		back, err := ReadFrame(&buf, max)
		if err != nil || !bytes.Equal(back, payload) {
			t.Fatalf("re-frame round trip failed: %v", err)
		}
	})
}

// FuzzReadStreamFrame covers the stream-tagged variant: the id must be
// nonzero, the payload bounded, and the round trip faithful.
func FuzzReadStreamFrame(f *testing.F) {
	seed := func(id uint32, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteStreamFrame(&buf, id, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(1, []byte("hello")))
	f.Add(seed(0xffffffff, nil))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 4, 0, 0, 0, 0}) // reserved id 0
	f.Add([]byte{0, 0, 0, 2, 0, 0})       // shorter than the id
	f.Fuzz(func(t *testing.T, data []byte) {
		const max = 1 << 16
		id, payload, err := ReadStreamFrame(bytes.NewReader(data), max)
		if err != nil {
			return
		}
		if id == 0 {
			t.Fatal("accepted the reserved stream id 0")
		}
		if len(payload) > max {
			t.Fatalf("accepted frame of %d bytes past max %d", len(payload), max)
		}
		var buf bytes.Buffer
		if err := WriteStreamFrame(&buf, id, payload); err != nil {
			t.Fatalf("re-frame failed: %v", err)
		}
		backID, back, err := ReadStreamFrame(&buf, max)
		if err != nil || backID != id || !bytes.Equal(back, payload) {
			t.Fatalf("re-frame round trip failed: id %d != %d, %v", backID, id, err)
		}
	})
}
