// Package gsi provides the Grid Security Infrastructure substrate the paper
// builds on (paper §2): mutually authenticated, encrypted channels carrying
// proxy-certificate chains (§2.2), credential delegation over those channels
// (§2.4), and gridmap DN-to-account mapping (§2.1).
//
// The transport is crypto/tls with certificate-path logic replaced by the
// proxy-aware validator in internal/proxy, since the standard library cannot
// validate chains whose intermediates are end-entity certificates.
package gsi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// DefaultMaxFrame bounds a single protocol message. Credential chains and
// MyProxy requests are small; a megabyte is generous.
const DefaultMaxFrame = 1 << 20

// MaxFrameSize is the absolute wire ceiling: no frame, whatever limit a
// caller configures, may carry more payload than this. Readers clamp the
// caller's max to it before comparing the length prefix — the comparison
// dominates the allocation, so a hostile prefix can never demand more
// than MaxFrameSize bytes — and writers refuse to emit a larger frame,
// which also rules out the silent uint32 truncation a multi-gigabyte
// payload would otherwise hit in the length header.
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned when an incoming frame exceeds the limit,
// or an outgoing payload exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("gsi: frame exceeds maximum size")

// WriteFrame writes one length-prefixed message.
//myproxy:hotpath
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("gsi: write frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("gsi: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed message of at most max bytes
// (max <= 0 selects DefaultMaxFrame).
//myproxy:hotpath
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if max > MaxFrameSize {
		max = MaxFrameSize
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > uint32(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("gsi: read frame body: %w", err)
	}
	return payload, nil
}

// Stream frames extend the base framing for multiplexed sessions: the
// 4-byte length counts a 4-byte stream identifier plus the payload, so a
// plain-frame reader that meets a stream frame fails loudly on the id
// bytes instead of silently misparsing (and vice versa the id doubles as
// a cheap sanity check — id 0 is reserved and never valid on the wire).

// streamIDLen is the size of the stream identifier inside a stream frame.
const streamIDLen = 4

// WriteStreamFrame writes one length-prefixed message tagged with a
// stream identifier (id must be nonzero).
//myproxy:hotpath
func WriteStreamFrame(w io.Writer, id uint32, payload []byte) error {
	if id == 0 {
		return errors.New("gsi: stream id 0 is reserved")
	}
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, len(payload), MaxFrameSize)
	}
	var hdr [4 + streamIDLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+streamIDLen))
	binary.BigEndian.PutUint32(hdr[4:], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("gsi: write stream frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("gsi: write stream frame body: %w", err)
	}
	return nil
}

// ReadStreamFrame reads one stream-tagged frame of at most max payload
// bytes (max <= 0 selects DefaultMaxFrame).
//myproxy:hotpath
func ReadStreamFrame(r io.Reader, max int) (uint32, []byte, error) {
	if max <= 0 {
		max = DefaultMaxFrame
	}
	if max > MaxFrameSize {
		max = MaxFrameSize
	}
	var hdr [4 + streamIDLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < streamIDLen {
		return 0, nil, errors.New("gsi: stream frame shorter than stream id")
	}
	if n-streamIDLen > uint32(max) {
		return 0, nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n-streamIDLen, max)
	}
	id := binary.BigEndian.Uint32(hdr[4:])
	if id == 0 {
		return 0, nil, errors.New("gsi: stream id 0 is reserved")
	}
	payload := make([]byte, n-streamIDLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("gsi: read stream frame body: %w", err)
	}
	return id, payload, nil
}
