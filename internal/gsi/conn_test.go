package gsi

import (
	"crypto/x509"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

func testRoots(t *testing.T) *x509.CertPool {
	t.Helper()
	pool := x509.NewCertPool()
	pool.AddCert(testpki.CA(t).Certificate())
	return pool
}

// connectPair establishes a GSI channel between two credentials over an
// in-memory pipe and returns (client side, server side).
func connectPair(t *testing.T, clientCred, serverCred *pki.Credential, clientOpts, serverOpts AuthOptions) (*Conn, *Conn, error) {
	t.Helper()
	cliRaw, srvRaw := net.Pipe()
	// Close the raw pipe ends at cleanup rather than the TLS conns:
	// tls.Conn.Close blocks up to 5s writing close_notify into the
	// synchronous pipe when the peer is not reading.
	t.Cleanup(func() { cliRaw.Close(); srvRaw.Close() })
	// Bound every exchange over the synchronous pipe: a handshake or
	// delegation bug then fails within seconds instead of hanging the
	// test binary until the go test timeout.
	dl := time.Now().Add(30 * time.Second)
	_ = cliRaw.SetDeadline(dl)
	_ = srvRaw.SetDeadline(dl)
	type res struct {
		conn *Conn
		err  error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := Server(srvRaw, serverCred, serverOpts)
		srvCh <- res{c, err}
	}()
	cli, cliErr := Client(cliRaw, clientCred, clientOpts)
	srv := <-srvCh
	if cliErr != nil || srv.err != nil {
		cliRaw.Close()
		srvRaw.Close()
		if cliErr != nil {
			return nil, nil, cliErr
		}
		return nil, nil, srv.err
	}
	return cli, srv.conn, nil
}

func defaultOpts(t *testing.T) AuthOptions {
	return AuthOptions{Roots: testRoots(t), HandshakeTimeout: 5 * time.Second}
}

func TestMutualAuthentication(t *testing.T) {
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	cli, srv, err := connectPair(t, user, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if got := srv.PeerIdentity(); got != user.Subject() {
		t.Errorf("server saw peer %q, want %q", got, user.Subject())
	}
	if got := cli.PeerIdentity(); got != server.Subject() {
		t.Errorf("client saw peer %q, want %q", got, server.Subject())
	}
}

func TestChannelCarriesMessages(t *testing.T) {
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	cli, srv, err := connectPair(t, user, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		//myproxy:allow goroleak connectPair arms a 30s deadline on the underlying pipe and t.Cleanup closes it
		msg, err := srv.ReadMessage()
		if err == nil && string(msg) == "ping" {
			err = srv.WriteMessage([]byte("pong"))
		}
		done <- err
	}()
	if err := cli.WriteMessage([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	reply, err := cli.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Errorf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestProxyCredentialAuthenticatesAsUser(t *testing.T) {
	// The defining property of proxy credentials (paper §2.3): a channel
	// authenticated with a proxy yields the *user's* identity.
	user := testpki.User(t, "gsi-alice")
	p, err := proxy.New(user, proxy.Options{Type: proxy.RFC3820, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	server := testpki.Host(t, "myproxy.test")
	_, srv, err := connectPair(t, p, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.PeerIdentity(); got != user.Subject() {
		t.Errorf("proxy authenticated as %q, want user %q", got, user.Subject())
	}
	if srv.Peer.Depth != 1 {
		t.Errorf("depth = %d", srv.Peer.Depth)
	}
}

func TestUntrustedClientRejected(t *testing.T) {
	rogueCA, err := pki.NewCA(pki.CAConfig{Name: pki.MustParseDN("/CN=Rogue CA"), Key: testpki.Key(t, 3)})
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := rogueCA.IssueCredentialForKey(pki.MustParseDN("/CN=rogue"), time.Hour, testpki.Key(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	server := testpki.Host(t, "myproxy.test")
	_, _, err = connectPair(t, rogue, server, defaultOpts(t), defaultOpts(t))
	if err == nil {
		t.Fatal("untrusted client accepted")
	}
}

func TestExpectedPeerEnforced(t *testing.T) {
	// Clients authenticate the repository itself (paper §5.1): connecting
	// to a server that presents some other trusted identity must fail.
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	opts := defaultOpts(t)
	opts.ExpectedPeer = "*/CN=some-other-server"
	_, _, err := connectPair(t, user, server, opts, defaultOpts(t))
	if err == nil {
		t.Fatal("wrong server identity accepted")
	}
	if !strings.Contains(err.Error(), "does not match expected") {
		t.Errorf("unexpected error: %v", err)
	}
	// And the match succeeds with the right pattern.
	opts.ExpectedPeer = "*/CN=myproxy.test"
	if _, _, err := connectPair(t, user, server, opts, defaultOpts(t)); err != nil {
		t.Fatalf("matching ExpectedPeer rejected: %v", err)
	}
}

func TestRevokedPeerRejected(t *testing.T) {
	user := testpki.User(t, "gsi-revoked")
	server := testpki.Host(t, "myproxy.test")
	opts := defaultOpts(t)
	serial := user.Certificate.SerialNumber
	opts.IsRevoked = func(c *x509.Certificate) bool {
		return c.SerialNumber.Cmp(serial) == 0
	}
	_, _, err := connectPair(t, user, server, defaultOpts(t), opts)
	if err == nil {
		t.Fatal("revoked client accepted")
	}
}

func TestServerRequiresRoots(t *testing.T) {
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	_, _, err := connectPair(t, user, server, defaultOpts(t), AuthOptions{})
	if err == nil {
		t.Fatal("server with no roots accepted a client")
	}
}

// truncationResult carries a ReadMessage outcome across goroutines.
type truncationResult struct {
	msg []byte
	err error
}

// readAsync starts a ReadMessage and returns the result channel, failing the
// test if the read has not completed within the deadline (a truncated peer
// must never hang the reader).
func awaitRead(t *testing.T, c *Conn) truncationResult {
	t.Helper()
	done := make(chan truncationResult, 1)
	go func() {
		//myproxy:allow goroleak connectPair arms a 30s deadline on the underlying pipe, and awaitRead fails the test after 10s
		msg, err := c.ReadMessage()
		done <- truncationResult{msg, err}
	}()
	select {
	case res := <-done:
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("ReadMessage hung on truncated frame")
		return truncationResult{}
	}
}

func TestTruncatedFrameMidLengthPrefix(t *testing.T) {
	// A peer that dies after sending only part of the 4-byte length prefix
	// must produce a clean error, not a hang and not an empty message.
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	cli, srv, err := connectPair(t, user, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		srv.tls.Write([]byte{0x00, 0x00}) // half a prefix...
		srv.tls.Close()                   // ...then gone
	}()
	res := awaitRead(t, cli)
	if res.err == nil {
		t.Fatalf("truncated prefix accepted as message %q", res.msg)
	}
	if !errors.Is(res.err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", res.err)
	}
	if res.msg != nil {
		t.Errorf("partial message surfaced: %q", res.msg)
	}
}

func TestTruncatedFrameMidPayload(t *testing.T) {
	// A complete prefix promising 64 bytes followed by only 10 must fail the
	// read — a short body must never be delivered as a valid message.
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	cli, srv, err := connectPair(t, user, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 64)
		srv.tls.Write(hdr[:])
		srv.tls.Write([]byte("ten bytes!"))
		srv.tls.Close()
	}()
	res := awaitRead(t, cli)
	if res.err == nil {
		t.Fatalf("truncated payload accepted as message %q", res.msg)
	}
	if !errors.Is(res.err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", res.err)
	}
	if !strings.Contains(res.err.Error(), "read frame body") {
		t.Errorf("err = %v, want frame-body context", res.err)
	}
	if res.msg != nil {
		t.Errorf("partial message surfaced: %q", res.msg)
	}
}

func TestMessageTimeoutUnblocksSilentPeer(t *testing.T) {
	// The per-message deadline (slowloris guard) must fire even when the
	// peer sends nothing at all.
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	cli, _, err := connectPair(t, user, server, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	cli.SetMessageTimeout(100 * time.Millisecond)
	start := time.Now()
	res := awaitRead(t, cli)
	if res.err == nil {
		t.Fatal("read from silent peer succeeded")
	}
	var nerr net.Error
	if !errors.As(res.err, &nerr) || !nerr.Timeout() {
		t.Errorf("err = %v, want net timeout", res.err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout fired after %v, want ~100ms", elapsed)
	}
}

func TestDialOverTCP(t *testing.T) {
	user := testpki.User(t, "gsi-alice")
	server := testpki.Host(t, "myproxy.test")
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn, err := Server(raw, server, defaultOpts(t))
		if err != nil {
			_ = raw.Close() // Server leaves raw open on handshake failure
			done <- err
			return
		}
		defer conn.Close()
		msg, err := conn.ReadMessage()
		if err == nil {
			err = conn.WriteMessage(append([]byte("echo:"), msg...))
		}
		done <- err
	}()
	conn, err := Dial(t.Context(), "tcp", ln.Addr().String(), user, defaultOpts(t))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	if err := conn.WriteMessage([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "echo:hi" {
		t.Errorf("reply = %q", reply)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
