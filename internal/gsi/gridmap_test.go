package gsi

import (
	"bytes"
	"testing"
)

func TestGridmapBasics(t *testing.T) {
	g := NewGridmap()
	g.Add("/C=US/O=Grid/CN=Jane Doe", "jdoe")
	if acct, ok := g.Lookup("/C=US/O=Grid/CN=Jane Doe"); !ok || acct != "jdoe" {
		t.Errorf("Lookup = %q, %v", acct, ok)
	}
	if _, ok := g.Lookup("/CN=unknown"); ok {
		t.Error("unknown DN resolved")
	}
	g.Add("/C=US/O=Grid/CN=Jane Doe", "jane2")
	if acct, _ := g.Lookup("/C=US/O=Grid/CN=Jane Doe"); acct != "jane2" {
		t.Error("Add did not replace")
	}
	g.Remove("/C=US/O=Grid/CN=Jane Doe")
	if g.Len() != 0 {
		t.Error("Remove did not delete")
	}
}

func TestParseGridmap(t *testing.T) {
	data := []byte(`
# grid-mapfile
"/C=US/O=Grid/CN=Jane Doe" jdoe
"/C=US/O=Grid/CN=Rich Roe" rroe,shared

`)
	g, err := ParseGridmap(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if acct, _ := g.Lookup("/C=US/O=Grid/CN=Rich Roe"); acct != "rroe" {
		t.Errorf("multi-account entry: %q", acct)
	}
}

func TestParseGridmapErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(`/C=US/CN=x jdoe`),      // unquoted
		[]byte(`"/C=US/CN=x jdoe`),     // unterminated
		[]byte(`"/C=US/CN=x"`),         // missing account
		[]byte(`"" jdoe`),              // empty DN
		[]byte(`"/CN=x" two accounts`), // whitespace in account
	}
	for _, data := range bad {
		if _, err := ParseGridmap(data); err == nil {
			t.Errorf("ParseGridmap(%q): expected error", data)
		}
	}
}

func TestGridmapEncodeRoundTrip(t *testing.T) {
	g := NewGridmap()
	g.Add("/C=US/O=Grid/CN=B User", "buser")
	g.Add("/C=US/O=Grid/CN=A User", "auser")
	enc := g.Encode()
	// Sorted output: A before B.
	if !bytes.HasPrefix(enc, []byte(`"/C=US/O=Grid/CN=A User" auser`)) {
		t.Errorf("encoding not sorted:\n%s", enc)
	}
	back, err := ParseGridmap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Errorf("round trip lost entries: %d", back.Len())
	}
	if got := back.DNs(); len(got) != 2 || got[0] != "/C=US/O=Grid/CN=A User" {
		t.Errorf("DNs = %v", got)
	}
}
