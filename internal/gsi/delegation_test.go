package gsi

import (
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// runDelegation performs one wire delegation from exporter to importer over
// an in-memory channel and returns the credential the importer received.
func runDelegation(t *testing.T, exporterCred, importerCred *pki.Credential, opts proxy.Options) (*pki.Credential, error) {
	t.Helper()
	// Exporter acts as the "server" side of the channel here; direction is
	// arbitrary since the channel is symmetric after authentication.
	cli, srv, err := connectPair(t, importerCred, exporterCred, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	type delRes struct {
		err error
	}
	ch := make(chan delRes, 1)
	go func() {
		_, err := Delegate(srv, exporterCred, opts)
		ch <- delRes{err}
	}()
	cred, err := RequestDelegation(cli, pki.KeySpec{Bits: 1024}, testRoots(t))
	if srvRes := <-ch; srvRes.err != nil {
		t.Fatalf("Delegate: %v", srvRes.err)
	}
	return cred, err
}

func TestWireDelegation(t *testing.T) {
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	cred, err := runDelegation(t, user, portal, proxy.Options{Type: proxy.RFC3820, Lifetime: time.Hour})
	if err != nil {
		t.Fatalf("RequestDelegation: %v", err)
	}
	// The delegated credential authenticates as the user.
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: testRoots(t)})
	if err != nil {
		t.Fatalf("verify delegated chain: %v", err)
	}
	if res.IdentityString() != user.Subject() {
		t.Errorf("identity = %q, want %q", res.IdentityString(), user.Subject())
	}
	if res.Depth != 1 {
		t.Errorf("depth = %d", res.Depth)
	}
	// The delegated key must differ from the user's long-term key.
	if pki.PublicKeysEqual(cred.PrivateKey.Public(), user.PrivateKey.Public()) {
		t.Fatal("private key crossed the wire")
	}
	if err := cred.Validate(time.Now()); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestWireDelegationChained(t *testing.T) {
	// user delegates to portal; portal delegates onward to a job host
	// (paper §2.4: "delegation can be chained").
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	jobHost := testpki.Host(t, "gram.test")

	firstHop, err := runDelegation(t, user, portal, proxy.Options{Type: proxy.RFC3820, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	secondHop, err := runDelegation(t, firstHop, jobHost, proxy.Options{Type: proxy.RFC3820, Lifetime: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.Verify(secondHop.CertChain(), proxy.VerifyOptions{Roots: testRoots(t)})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if res.Depth != 2 {
		t.Errorf("depth = %d, want 2", res.Depth)
	}
	if res.IdentityString() != user.Subject() {
		t.Errorf("identity = %q", res.IdentityString())
	}
}

func TestWireDelegationLimited(t *testing.T) {
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	cred, err := runDelegation(t, user, portal, proxy.Options{Type: proxy.RFC3820Limited, Lifetime: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: testRoots(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Limited {
		t.Error("limited delegation lost its limitation")
	}
	if res.Permits(proxy.OpJobSubmit) {
		t.Error("limited proxy permits job submission")
	}
}

func TestWireDelegationRestricted(t *testing.T) {
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	cred, err := runDelegation(t, user, portal, proxy.Options{
		Type:          proxy.RFC3820Restricted,
		Lifetime:      time.Hour,
		RestrictedOps: []string{proxy.OpFileRead},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: testRoots(t)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Permits(proxy.OpFileRead) || res.Permits(proxy.OpJobSubmit) {
		t.Errorf("restricted ops = %v", res.RestrictedOps)
	}
}

func TestDelegationLifetimeClamped(t *testing.T) {
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	cred, err := runDelegation(t, user, portal, proxy.Options{
		Type: proxy.RFC3820, Lifetime: 100 * 365 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cred.Certificate.NotAfter.After(user.Certificate.NotAfter) {
		t.Error("delegated proxy outlives the delegating credential")
	}
}

func TestDelegateGarbageCSR(t *testing.T) {
	user := testpki.User(t, "deleg-alice")
	portal := testpki.Host(t, "portal.test")
	cli, srv, err := connectPair(t, portal, user, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := Delegate(srv, user, proxy.Options{Type: proxy.RFC3820})
		errCh <- err
	}()
	if err := cli.WriteMessage([]byte("this is not a CSR")); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("garbage CSR accepted")
	}
}
