package gsi

import (
	"context"
	"crypto/rand"
	"crypto/rsa"
	"crypto/x509"
	"errors"
	"fmt"

	"repro/internal/pki"
	"repro/internal/proxy"
)

// Wire delegation (paper §2.4): the importing side generates a fresh key
// pair and sends a certification request over the authenticated channel;
// the exporting side signs a proxy certificate for that public key with its
// own credential and returns the full chain. The private key never crosses
// the wire — this property is the heart of GSI delegation and of both
// MyProxy operations (paper Figures 1 and 2 are each one run of this
// protocol in opposite directions).

// RequestDelegation runs the importing side: it generates a key pair, sends
// a CSR, receives the signed chain, and assembles the resulting proxy
// credential. The returned credential is verified against roots before
// being accepted. keyBits == 0 selects pki.DefaultKeyBits.
func RequestDelegation(conn *Conn, keyBits int, roots *x509.CertPool) (*pki.Credential, error) {
	return RequestDelegationFrom(conn, nil, keyBits, roots)
}

// RequestDelegationFrom is RequestDelegation with the key pair drawn from
// keys (typically a keypool.Pool), taking fresh-key generation off the
// delegation hot path. A nil source generates synchronously.
func RequestDelegationFrom(conn *Conn, keys proxy.KeySource, keyBits int, roots *x509.CertPool) (*pki.Credential, error) {
	var key *rsa.PrivateKey
	var err error
	if keys != nil {
		key, err = keys.Get(context.Background(), keyBits)
	} else {
		key, err = pki.GenerateKey(keyBits)
	}
	if err != nil {
		return nil, err
	}
	return requestDelegationWithKey(conn, key, roots)
}

func requestDelegationWithKey(conn *Conn, key *rsa.PrivateKey, roots *x509.CertPool) (*pki.Credential, error) {
	// The CSR subject is ignored by the signer (RFC 3820: the issuer
	// dictates the subject), but must be present for a well-formed request.
	csrDER, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject: conn.Local.Certificate.Subject,
	}, key)
	if err != nil {
		return nil, fmt.Errorf("gsi: create CSR: %w", err)
	}
	if err := conn.WriteMessage(csrDER); err != nil {
		return nil, err
	}
	chainPEM, err := conn.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("gsi: receive delegated chain: %w", err)
	}
	certs, err := pki.DecodeCertsPEM(chainPEM)
	if err != nil {
		return nil, fmt.Errorf("gsi: decode delegated chain: %w", err)
	}
	cred := &pki.Credential{Certificate: certs[0], PrivateKey: key, Chain: certs[1:]}
	// The leaf must certify exactly the key we generated.
	leafPub, ok := cred.Certificate.PublicKey.(*rsa.PublicKey)
	if !ok || leafPub.N.Cmp(key.N) != 0 || leafPub.E != key.E {
		return nil, errors.New("gsi: delegated certificate does not match requested key")
	}
	if roots != nil {
		if _, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: roots}); err != nil {
			return nil, fmt.Errorf("gsi: delegated chain rejected: %w", err)
		}
	}
	return cred, nil
}

// Delegate runs the exporting side: it receives the peer's CSR and signs a
// proxy certificate under issuer with the given options, sending back the
// full chain (new proxy first, then issuer's chain). It returns the signed
// certificate.
func Delegate(conn *Conn, issuer *pki.Credential, opts proxy.Options) (*x509.Certificate, error) {
	csrDER, err := conn.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("gsi: receive CSR: %w", err)
	}
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		return nil, fmt.Errorf("gsi: parse CSR: %w", err)
	}
	// Proof of possession of the requested key.
	if err := csr.CheckSignature(); err != nil {
		return nil, fmt.Errorf("gsi: CSR signature: %w", err)
	}
	pub, ok := csr.PublicKey.(*rsa.PublicKey)
	if !ok {
		return nil, errors.New("gsi: CSR public key is not RSA")
	}
	cert, err := proxy.Create(issuer, pub, opts)
	if err != nil {
		return nil, err
	}
	chain := []*x509.Certificate{cert}
	chain = append(chain, issuer.CertChain()...)
	if err := conn.WriteMessage(pki.EncodeCertsPEM(chain)); err != nil {
		return nil, err
	}
	return cert, nil
}
