package gsi

import (
	"context"
	"crypto"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"fmt"

	"repro/internal/pki"
	"repro/internal/proxy"
)

// Wire delegation (paper §2.4): the importing side generates a fresh key
// pair and sends a certification request over the authenticated channel;
// the exporting side signs a proxy certificate for that public key with its
// own credential and returns the full chain. The private key never crosses
// the wire — this property is the heart of GSI delegation and of both
// MyProxy operations (paper Figures 1 and 2 are each one run of this
// protocol in opposite directions).
//
// The key spec travels implicitly: the CSR carries the public key, so the
// signer learns the algorithm from the request itself and no negotiation
// round is needed. Both sides speak Channel, so the same exchange runs
// over a dedicated connection or one stream of a multiplexed session.

// RequestDelegation runs the importing side: it generates a key pair, sends
// a CSR, receives the signed chain, and assembles the resulting proxy
// credential. The returned credential is verified against roots before
// being accepted. The zero spec selects RSA at pki.DefaultKeyBits.
//myproxy:hotpath
func RequestDelegation(ch Channel, spec pki.KeySpec, roots *x509.CertPool) (*pki.Credential, error) {
	return RequestDelegationFrom(ch, nil, spec, roots)
}

// RequestDelegationFrom is RequestDelegation with the key pair drawn from
// keys (typically a keypool.Pool), taking fresh-key generation off the
// delegation hot path. A nil source generates synchronously.
//myproxy:hotpath
func RequestDelegationFrom(ch Channel, keys proxy.KeySource, spec pki.KeySpec, roots *x509.CertPool) (*pki.Credential, error) {
	var key crypto.Signer
	var err error
	if keys != nil {
		key, err = keys.Get(context.Background(), spec)
	} else {
		key, err = pki.GenerateSigner(spec)
	}
	if err != nil {
		return nil, err
	}
	return requestDelegationWithKey(ch, key, roots)
}

func requestDelegationWithKey(ch Channel, key crypto.Signer, roots *x509.CertPool) (*pki.Credential, error) {
	// The CSR subject is ignored by the signer (RFC 3820: the issuer
	// dictates the subject), but must be present for a well-formed request.
	csrDER, err := x509.CreateCertificateRequest(rand.Reader, &x509.CertificateRequest{
		Subject: ch.LocalCredential().Certificate.Subject,
	}, key)
	if err != nil {
		return nil, fmt.Errorf("gsi: create CSR: %w", err)
	}
	if err := ch.WriteMessage(csrDER); err != nil {
		return nil, err
	}
	chainPEM, err := ch.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("gsi: receive delegated chain: %w", err)
	}
	certs, err := pki.DecodeCertsPEM(chainPEM)
	if err != nil {
		return nil, fmt.Errorf("gsi: decode delegated chain: %w", err)
	}
	cred := &pki.Credential{Certificate: certs[0], PrivateKey: key, Chain: certs[1:]}
	// The leaf must certify exactly the key we generated.
	if !pki.PublicKeysEqual(cred.Certificate.PublicKey, key.Public()) {
		return nil, errors.New("gsi: delegated certificate does not match requested key")
	}
	if roots != nil {
		if _, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: roots}); err != nil {
			return nil, fmt.Errorf("gsi: delegated chain rejected: %w", err)
		}
	}
	return cred, nil
}

// Delegate runs the exporting side: it receives the peer's CSR and signs a
// proxy certificate under issuer with the given options, sending back the
// full chain (new proxy first, then issuer's chain). It returns the signed
// certificate. The requested key's algorithm is taken from the CSR; any
// supported algorithm (see pki.KeyAlgorithm) is accepted regardless of the
// issuer's own key type — proxy chains may mix algorithms.
//myproxy:hotpath
func Delegate(ch Channel, issuer *pki.Credential, opts proxy.Options) (*x509.Certificate, error) {
	csrDER, err := ch.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("gsi: receive CSR: %w", err)
	}
	csr, err := x509.ParseCertificateRequest(csrDER)
	if err != nil {
		return nil, fmt.Errorf("gsi: parse CSR: %w", err)
	}
	// Proof of possession of the requested key.
	if err := csr.CheckSignature(); err != nil {
		return nil, fmt.Errorf("gsi: CSR signature: %w", err)
	}
	if _, ok := pki.AlgorithmOf(csr.PublicKey); !ok {
		return nil, errors.New("gsi: CSR public key algorithm not supported")
	}
	cert, err := proxy.Create(issuer, csr.PublicKey, opts)
	if err != nil {
		return nil, err
	}
	chain := []*x509.Certificate{cert}
	chain = append(chain, issuer.CertChain()...)
	if err := ch.WriteMessage(pki.EncodeCertsPEM(chain)); err != nil {
		return nil, err
	}
	return cert, nil
}
