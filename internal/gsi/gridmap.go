package gsi

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Gridmap maps Grid identities (DN strings) to local account names
// (paper §2.1: "Unix hosts have a file containing DN and username pairs").
// Resources consult it after authentication to authorize and localize the
// caller.
type Gridmap struct {
	mu      sync.RWMutex
	entries map[string]string //myproxy:guardedby mu
}

// NewGridmap builds an empty gridmap.
func NewGridmap() *Gridmap {
	return &Gridmap{entries: make(map[string]string)}
}

// Add registers a DN -> local account mapping, replacing any previous one.
func (g *Gridmap) Add(dn, account string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries[dn] = account
}

// Remove deletes a mapping.
func (g *Gridmap) Remove(dn string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.entries, dn)
}

// Lookup resolves a DN to a local account.
func (g *Gridmap) Lookup(dn string) (account string, ok bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	account, ok = g.entries[dn]
	return account, ok
}

// Len reports the number of mappings.
func (g *Gridmap) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entries)
}

// DNs returns all mapped DNs, sorted, for diagnostics.
func (g *Gridmap) DNs() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.entries))
	for dn := range g.entries {
		out = append(out, dn)
	}
	sort.Strings(out)
	return out
}

// ParseGridmap parses the classic grid-mapfile format: each line is a
// quoted DN followed by whitespace and a local account name; '#' begins a
// comment.
//
//	"/C=US/O=Test Grid/CN=Jane Doe" jdoe
func ParseGridmap(data []byte) (*Gridmap, error) {
	entries := make(map[string]string)
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, `"`) {
			return nil, fmt.Errorf("gsi: gridmap line %d: DN must be quoted", i+1)
		}
		end := strings.Index(line[1:], `"`)
		if end < 0 {
			return nil, fmt.Errorf("gsi: gridmap line %d: unterminated DN quote", i+1)
		}
		dn := line[1 : 1+end]
		account := strings.TrimSpace(line[2+end:])
		if dn == "" || account == "" {
			return nil, fmt.Errorf("gsi: gridmap line %d: missing DN or account", i+1)
		}
		// Multiple accounts may be listed comma-separated; the first is
		// the default, which is all this substrate needs.
		if comma := strings.IndexByte(account, ','); comma >= 0 {
			account = account[:comma]
		}
		if strings.ContainsAny(account, " \t") {
			return nil, fmt.Errorf("gsi: gridmap line %d: malformed account %q", i+1, account)
		}
		entries[dn] = account
	}
	return &Gridmap{entries: entries}, nil
}

// Encode renders the gridmap in grid-mapfile format, sorted by DN.
func (g *Gridmap) Encode() []byte {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dns := make([]string, 0, len(g.entries))
	for dn := range g.entries {
		dns = append(dns, dn)
	}
	sort.Strings(dns)
	var b strings.Builder
	for _, dn := range dns {
		fmt.Fprintf(&b, "%q %s\n", dn, g.entries[dn])
	}
	return []byte(b.String())
}
