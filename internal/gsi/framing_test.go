package gsi

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:8]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

func TestFrameProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf, 0)
		return err == nil && bytes.Equal(got, payload) && buf.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
