package gsi

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xab}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame = %q, want %q", got, want)
		}
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:8]
	if _, err := ReadFrame(bytes.NewReader(trunc), 0); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil), 0); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v, want EOF", err)
	}
}

func TestFrameProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf, 0)
		return err == nil && bytes.Equal(got, payload) && buf.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// failReader errors on every Read: if the frame reader tries to pull body
// bytes (which implies it already allocated the payload buffer), the test
// sees readBodyErr instead of ErrFrameTooLarge.
type failReader struct{ hdr []byte }

var readBodyErr = errors.New("read past the header")

func (f *failReader) Read(p []byte) (int, error) {
	if len(f.hdr) == 0 {
		return 0, readBodyErr
	}
	n := copy(p, f.hdr)
	f.hdr = f.hdr[n:]
	return n, nil
}

// TestOversizedPrefixRejectedBeforeAllocation: a hostile length prefix is
// refused by the bound check alone — no payload read, no payload
// allocation — however large the caller sets max.
func TestOversizedPrefixRejectedBeforeAllocation(t *testing.T) {
	hostile := []byte{0xff, 0xff, 0xff, 0xff} // claims ~4 GiB
	if _, err := ReadFrame(&failReader{hdr: hostile}, 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame(hostile prefix) = %v, want ErrFrameTooLarge", err)
	}
	// A caller-supplied max beyond the wire ceiling is clamped to
	// MaxFrameSize, so the hostile prefix still loses.
	if _, err := ReadFrame(&failReader{hdr: hostile}, 1<<31); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame(hostile prefix, huge max) = %v, want ErrFrameTooLarge", err)
	}
	stream := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 1}
	if _, _, err := ReadStreamFrame(&failReader{hdr: stream}, 1<<31); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadStreamFrame(hostile prefix) = %v, want ErrFrameTooLarge", err)
	}
	// The rejection allocates no payload: only the error value itself.
	allocs := testing.AllocsPerRun(100, func() {
		_, _ = ReadFrame(&failReader{hdr: []byte{0xff, 0xff, 0xff, 0xff}}, 0)
	})
	if allocs > 8 {
		t.Errorf("oversized-prefix rejection allocated %.0f objects; payload-sized make must not run", allocs)
	}
}

// TestWriteFrameRejectsOversizedPayload: the writers refuse payloads past
// MaxFrameSize instead of truncating the uint32 length header.
func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	big := make([]byte, MaxFrameSize+1)
	if err := WriteFrame(io.Discard, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteFrame(oversized) = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteStreamFrame(io.Discard, 7, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("WriteStreamFrame(oversized) = %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, 4096)); err != nil {
		t.Fatalf("WriteFrame(small) = %v", err)
	}
}
