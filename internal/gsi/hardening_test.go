package gsi

import (
	"crypto/x509"
	"io"
	"net"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// The delegation importer must reject a chain whose leaf certifies a key
// other than the one it generated (a malicious exporter substituting its
// own key pair would otherwise hold the private key for "our" proxy).
func TestRequestDelegationRejectsForeignKey(t *testing.T) {
	user := testpki.User(t, "harden-alice")
	portal := testpki.Host(t, "harden-portal.test")
	cli, srv, err := connectPair(t, portal, user, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		// A hostile exporter: read the CSR, ignore its key, and send back
		// a proxy minted for a DIFFERENT (attacker-held) key.
		//myproxy:allow goroleak connectPair arms a 30s deadline on the underlying pipe and t.Cleanup closes it
		if _, err := srv.ReadMessage(); err != nil {
			errCh <- err
			return
		}
		foreign := testpki.Key(t, 7)
		cert, err := proxy.Create(user, &foreign.PublicKey, proxy.Options{Lifetime: time.Hour})
		if err != nil {
			errCh <- err
			return
		}
		chain := append([]*x509.Certificate{cert}, user.CertChain()...)
		errCh <- srv.WriteMessage(pki.EncodeCertsPEM(chain))
	}()
	_, err = RequestDelegation(cli, pki.KeySpec{Bits: 1024}, testRoots(t))
	if err == nil || !strings.Contains(err.Error(), "does not match requested key") {
		t.Fatalf("foreign-key chain: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// The importer must reject a chain that does not verify against the trust
// roots, even if the key matches.
func TestRequestDelegationRejectsUntrustedChain(t *testing.T) {
	rogueCA, err := pki.NewCA(pki.CAConfig{Name: pki.MustParseDN("/CN=Harden Rogue CA"), Key: testpki.Key(t, 8)})
	if err != nil {
		t.Fatal(err)
	}
	rogueUser, err := rogueCA.IssueCredentialForKey(pki.MustParseDN("/CN=rogue-user"), time.Hour, testpki.Key(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Both ends trust BOTH CAs at the channel layer (so the handshake
	// succeeds), but the importer pins delegation validation to the main
	// test CA only.
	trustBoth := defaultOpts(t)
	trustBoth.Roots.AddCert(rogueCA.Certificate())
	portal := testpki.Host(t, "harden-portal.test")
	cli, srv, err := connectPair(t, portal, rogueUser, trustBoth, trustBoth)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := Delegate(srv, rogueUser, proxy.Options{Lifetime: time.Hour})
		errCh <- err
	}()
	_, err = RequestDelegation(cli, pki.KeySpec{Bits: 1024}, testRoots(t)) // pins the main CA
	if err == nil || !strings.Contains(err.Error(), "delegated chain rejected") {
		t.Fatalf("untrusted chain: %v", err)
	}
	<-errCh
}

func TestConnAfterCloseFails(t *testing.T) {
	user := testpki.User(t, "harden-alice")
	portal := testpki.Host(t, "harden-portal.test")
	cli, _, err := connectPair(t, user, portal, defaultOpts(t), defaultOpts(t))
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := cli.WriteMessage([]byte("after close")); err == nil {
		t.Error("write after close succeeded")
	}
	if _, err := cli.ReadMessage(); err == nil {
		t.Error("read after close succeeded")
	}
}

func TestClientRejectsIncompleteCredential(t *testing.T) {
	user := testpki.User(t, "harden-alice")
	raw1, raw2 := net.Pipe()
	t.Cleanup(func() { raw1.Close(); raw2.Close() })
	if _, err := Client(raw1, &pki.Credential{Certificate: user.Certificate}, defaultOpts(t)); err == nil {
		t.Error("credential without key accepted")
	}
	if _, err := Client(raw1, nil, defaultOpts(t)); err == nil {
		t.Error("nil credential accepted")
	}
}

// Property: frames written then read back with an interposed size limit
// behave deterministically — either the full payload round-trips (within
// the limit) or ErrFrameTooLarge fires (beyond it); no third outcome.
func TestFrameLimitProperty(t *testing.T) {
	f := func(payload []byte, limitSeed uint16) bool {
		limit := int(limitSeed)%256 + 1
		var buf writableBuffer
		if err := WriteFrame(&buf, payload); err != nil {
			return false
		}
		got, err := ReadFrame(&buf, limit)
		if len(payload) <= limit {
			return err == nil && string(got) == string(payload)
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

type writableBuffer struct{ data []byte }

func (b *writableBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writableBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}
