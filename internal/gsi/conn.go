package gsi

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/proxy"
)

// AuthOptions configures peer authentication for a GSI channel.
type AuthOptions struct {
	// Roots are the trusted CA certificates; required.
	Roots *x509.CertPool
	// MaxDepth bounds proxy chain depth (0 = proxy.DefaultMaxDepth).
	MaxDepth int
	// IsRevoked is an optional revocation hook applied to every peer
	// certificate.
	IsRevoked func(*x509.Certificate) bool
	// ExpectedPeer, when non-empty, is a DN pattern (policy.MatchDN syntax)
	// the authenticated peer identity must satisfy. Clients use this to
	// authenticate the repository and defeat impersonation (paper §5.1:
	// "MyProxy clients also require mutual authentication of the
	// repository").
	ExpectedPeer string
	// HandshakeTimeout bounds the TLS handshake (0 = 30s).
	HandshakeTimeout time.Duration
	// Cache, when non-nil, memoizes peer chain verifications (see
	// proxy.VerifyCache). Revocation is re-checked on every hit, so a CRL
	// reload takes effect on the next connection regardless of caching.
	Cache *proxy.VerifyCache
	// TLSConfig, when non-nil, is a shared TLS configuration built by
	// NewClientTLSConfig or NewServerTLSConfig. Sharing one config across
	// connections is what makes session resumption work: the server's
	// ticket keys and the client's session cache live in the config. nil
	// builds a fresh per-connection config (no resumption).
	TLSConfig *tls.Config
}

// Channel is one authenticated message pipe: either a whole connection
// (*Conn) or one stream of a multiplexed session (*Stream). Delegation and
// the MyProxy protocol handlers speak Channel, so a protocol exchange is
// written once and runs unchanged over both transports.
type Channel interface {
	// WriteMessage sends one framed message.
	WriteMessage(payload []byte) error
	// ReadMessage receives one framed message. The payload is raw peer
	// input: the taint passes treat results of this method as wire-tainted.
	//myproxy:untrusted
	ReadMessage() ([]byte, error)
	// LocalCredential reports the credential this side authenticated with.
	LocalCredential() *pki.Credential
	// PeerIdentity reports the authenticated Grid identity of the remote
	// side.
	PeerIdentity() string
	// RemoteAddr reports the remote network address.
	RemoteAddr() net.Addr
}

// Conn is a mutually authenticated GSI channel. All payloads are protected
// by TLS (the paper's §2.2/§5.1 confidentiality and integrity requirement)
// and exchanged as length-framed messages.
type Conn struct {
	tls *tls.Conn
	// Peer describes the authenticated remote identity: the verified proxy
	// chain result, including the Grid identity and any proxy attributes.
	Peer *proxy.Result
	// Local is the credential this side authenticated with.
	Local *pki.Credential
	// Resumed reports whether the TLS layer resumed a previous session
	// (abbreviated handshake). Peer verification ran either way.
	Resumed bool

	maxFrame int

	// msgTimeout, when positive, gives every message read/write its own
	// deadline (slowloris guard); sessionDeadline, when set, caps the whole
	// exchange regardless of per-message progress.
	msgTimeout      time.Duration
	sessionDeadline time.Time
}

// tlsCertificate assembles the TLS leaf+chain from a Grid credential. The
// private key is the leaf's (typically a proxy's) key.
func tlsCertificate(cred *pki.Credential) (tls.Certificate, error) {
	if cred == nil || cred.Certificate == nil || cred.PrivateKey == nil {
		return tls.Certificate{}, errors.New("gsi: incomplete credential")
	}
	tc := tls.Certificate{PrivateKey: cred.PrivateKey, Leaf: cred.Certificate}
	for _, c := range cred.CertChain() {
		tc.Certificate = append(tc.Certificate, c.Raw)
	}
	return tc, nil
}

// baseTLSConfig builds the shared pieces of client and server configs.
// All certificate verification is disabled at the TLS layer and performed
// by authenticatePeer immediately after the handshake, because the standard
// verifier cannot walk proxy chains.
func baseTLSConfig(cred *pki.Credential) (*tls.Config, error) {
	tc, err := tlsCertificate(cred)
	if err != nil {
		return nil, err
	}
	return &tls.Config{
		Certificates: []tls.Certificate{tc},
		MinVersion:   tls.VersionTLS12,
		// Peer chains are validated by proxy.Verify after the handshake.
		InsecureSkipVerify: true,
		ClientAuth:         tls.RequireAnyClientCert,
	}, nil
}

// NewClientTLSConfig builds a TLS configuration for the initiating side of
// GSI channels, shared across connections so sessions resume. sessions,
// when non-nil, caches session tickets per destination (the standard
// library keys the cache by server address when no ServerName is set), so
// a portal's second and later connections to the same repository skip the
// full handshake's RSA exchange. Resumption changes nothing above the
// transport: authenticatePeer re-verifies the peer chain on every
// connection, resumed or not.
func NewClientTLSConfig(cred *pki.Credential, sessions tls.ClientSessionCache) (*tls.Config, error) {
	cfg, err := baseTLSConfig(cred)
	if err != nil {
		return nil, err
	}
	cfg.ClientSessionCache = sessions
	return cfg, nil
}

// NewServerTLSConfig builds a TLS configuration for the accepting side of
// GSI channels. Reuse one config for all connections of a listener: the
// automatically rotated session ticket keys live in the config, so
// per-connection configs silently disable resumption.
func NewServerTLSConfig(cred *pki.Credential) (*tls.Config, error) {
	return baseTLSConfig(cred)
}

// authenticatePeer validates the peer chain from the completed handshake.
func authenticatePeer(tc *tls.Conn, opts AuthOptions) (*proxy.Result, error) {
	if opts.Roots == nil {
		return nil, errors.New("gsi: AuthOptions.Roots is required")
	}
	state := tc.ConnectionState()
	if len(state.PeerCertificates) == 0 {
		return nil, errors.New("gsi: peer presented no certificates")
	}
	// A resumed TLS session restores the peer chain from the session state
	// rather than re-transmitting it; either way the chain is re-verified
	// here on every connection (opts.Cache only makes the re-verification
	// cheap, it never skips revocation).
	res, err := opts.Cache.Verify(state.PeerCertificates, proxy.VerifyOptions{
		Roots:     opts.Roots,
		MaxDepth:  opts.MaxDepth,
		IsRevoked: opts.IsRevoked,
	})
	if err != nil {
		return nil, fmt.Errorf("gsi: peer chain: %w", err)
	}
	// The TLS layer has already proven possession of the leaf private key;
	// proxy.Verify proved the leaf chains to a trusted identity.
	if opts.ExpectedPeer != "" && !policy.MatchDN(opts.ExpectedPeer, res.IdentityString()) {
		return nil, fmt.Errorf("gsi: peer identity %q does not match expected %q",
			res.IdentityString(), opts.ExpectedPeer)
	}
	return res, nil
}

func handshakeDeadline(opts AuthOptions) time.Time {
	d := opts.HandshakeTimeout
	if d <= 0 {
		d = 30 * time.Second
	}
	return time.Now().Add(d)
}

// Dial opens a GSI channel to addr, authenticating with cred and verifying
// the server per opts.
func Dial(ctx context.Context, network, addr string, cred *pki.Credential, opts AuthOptions) (*Conn, error) {
	var d net.Dialer
	raw, err := d.DialContext(ctx, network, addr)
	if err != nil {
		return nil, fmt.Errorf("gsi: dial %s: %w", addr, err)
	}
	conn, err := Client(raw, cred, opts)
	if err != nil {
		_ = raw.Close() // already failing; close is best-effort
		return nil, err
	}
	return conn, nil
}

// Client wraps an established net.Conn as the initiating side of a GSI
// channel.
func Client(raw net.Conn, cred *pki.Credential, opts AuthOptions) (*Conn, error) {
	cfg := opts.TLSConfig
	if cfg == nil {
		var err error
		cfg, err = baseTLSConfig(cred)
		if err != nil {
			return nil, err
		}
	}
	tc := tls.Client(raw, cfg)
	if err := completeHandshake(tc, raw, opts); err != nil {
		return nil, err
	}
	peer, err := authenticatePeer(tc, opts)
	if err != nil {
		// Close the raw conn, not the TLS conn: writing close_notify can
		// block when the rejected peer is not reading.
		_ = raw.Close() // rejecting the peer; close is best-effort
		return nil, err
	}
	return &Conn{tls: tc, Peer: peer, Local: cred, Resumed: tc.ConnectionState().DidResume, maxFrame: DefaultMaxFrame}, nil
}

// Server wraps an accepted net.Conn as the responding side of a GSI channel,
// requiring and verifying a client certificate chain.
func Server(raw net.Conn, cred *pki.Credential, opts AuthOptions) (*Conn, error) {
	cfg := opts.TLSConfig
	if cfg == nil {
		var err error
		cfg, err = baseTLSConfig(cred)
		if err != nil {
			return nil, err
		}
	}
	tc := tls.Server(raw, cfg)
	if err := completeHandshake(tc, raw, opts); err != nil {
		return nil, err
	}
	peer, err := authenticatePeer(tc, opts)
	if err != nil {
		_ = raw.Close() // rejecting the peer; close is best-effort
		return nil, err
	}
	return &Conn{tls: tc, Peer: peer, Local: cred, Resumed: tc.ConnectionState().DidResume, maxFrame: DefaultMaxFrame}, nil
}

func completeHandshake(tc *tls.Conn, raw net.Conn, opts AuthOptions) error {
	if err := tc.SetDeadline(handshakeDeadline(opts)); err != nil {
		_ = raw.Close() // already failing; close is best-effort
		return err
	}
	if err := tc.Handshake(); err != nil {
		_ = raw.Close() // already failing; close is best-effort
		return fmt.Errorf("gsi: handshake: %w", err)
	}
	return tc.SetDeadline(time.Time{})
}

// SetMessageTimeout arms a per-message deadline: every subsequent
// WriteMessage/ReadMessage gets its own budget of d, so a peer must keep
// making message-level progress to hold the connection (the slowloris
// guard). d <= 0 disarms it, restoring caller-managed deadlines.
func (c *Conn) SetMessageTimeout(d time.Duration) { c.msgTimeout = d }

// SetSessionDeadline caps the whole exchange at t: per-message deadlines
// never extend past it. The zero time removes the cap.
func (c *Conn) SetSessionDeadline(t time.Time) { c.sessionDeadline = t }

// armDeadline applies the per-message deadline, bounded by the session cap.
// A SetDeadline failure (closed connection) must not be swallowed: it would
// silently disarm the slowloris guard for the message that follows.
func (c *Conn) armDeadline() error {
	if c.msgTimeout <= 0 {
		return nil
	}
	dl := time.Now().Add(c.msgTimeout)
	if !c.sessionDeadline.IsZero() && c.sessionDeadline.Before(dl) {
		dl = c.sessionDeadline
	}
	return c.tls.SetDeadline(dl)
}

// WriteMessage sends one framed message over the channel.
//myproxy:hotpath
func (c *Conn) WriteMessage(payload []byte) error {
	if err := c.armDeadline(); err != nil {
		return fmt.Errorf("gsi: arm write deadline: %w", err)
	}
	return WriteFrame(c.tls, payload)
}

// ReadMessage receives one framed message.
//myproxy:hotpath
func (c *Conn) ReadMessage() ([]byte, error) {
	if err := c.armDeadline(); err != nil {
		return nil, fmt.Errorf("gsi: arm read deadline: %w", err)
	}
	return ReadFrame(c.tls, c.maxFrame)
}

// SetDeadline applies to all channel I/O.
func (c *Conn) SetDeadline(t time.Time) error { return c.tls.SetDeadline(t) }

// Close terminates the channel.
func (c *Conn) Close() error { return c.tls.Close() }

// PeerIdentity returns the authenticated Grid identity of the remote side.
func (c *Conn) PeerIdentity() string { return c.Peer.IdentityString() }

// LocalCredential returns the credential this side authenticated with.
func (c *Conn) LocalCredential() *pki.Credential { return c.Local }

// PeerChain returns the raw certificate chain the peer presented in the
// TLS handshake (or, on a resumed session, the chain restored from session
// state). Multiplexed sessions re-verify it per stream so a revocation
// takes effect mid-session.
func (c *Conn) PeerChain() []*x509.Certificate {
	return c.tls.ConnectionState().PeerCertificates
}

// RemoteAddr reports the remote network address.
func (c *Conn) RemoteAddr() net.Addr { return c.tls.RemoteAddr() }
