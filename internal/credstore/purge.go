package credstore

import (
	"time"
)

// PurgeExpired deletes every expired entry in the store, returning how many
// were (or, with dryRun, would be) removed. Expired credentials are dead
// weight and residual risk on the repository host (paper §5.1), so
// operators purge them periodically (cmd/myproxy-admin) and the server can
// sweep on an interval.
func PurgeExpired(store Store, now time.Time, dryRun bool) (int, error) {
	usernames, err := store.Usernames()
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, u := range usernames {
		entries, err := store.List(u)
		if err != nil {
			return removed, err
		}
		for _, e := range entries {
			if !e.Expired(now) {
				continue
			}
			if !dryRun {
				if err := store.Delete(u, e.Name); err != nil && err != ErrNotFound {
					return removed, err
				}
			}
			removed++
		}
	}
	return removed, nil
}
