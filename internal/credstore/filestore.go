package credstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

var errEmptyUsername = errors.New("credstore: empty username")

// FileStore persists entries as one JSON document per credential inside a
// directory, mirroring the C implementation's per-user files under
// /var/myproxy. Private keys inside the files are sealed; the files
// themselves are additionally created owner-only (0600, directory 0700)
// because the repository host must be tightly secured (paper §5.1).
type FileStore struct {
	dir string
	mu  sync.Mutex // serializes multi-file operations (List/Usernames scans)
}

// NewFileStore creates (if needed) and opens a directory-backed store.
// Stale temp files from writes interrupted by a crash are swept on open:
// an unrenamed ".put-*" file is an aborted deposit (the rename never
// happened, so the previous entry — if any — is still intact) and is
// deleted rather than left to accumulate.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("credstore: create store dir: %w", err)
	}
	s := &FileStore{dir: dir}
	if err := s.sweepTempFiles(); err != nil {
		return nil, err
	}
	return s, nil
}

// sweepTempFiles removes ".put-*" leftovers from crashed writes.
func (s *FileStore) sweepTempFiles() error {
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("credstore: sweep temp files: %w", err)
	}
	for _, de := range dirents {
		if de.IsDir() || !strings.HasPrefix(de.Name(), ".put-") {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, de.Name())); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("credstore: sweep %s: %w", de.Name(), err)
		}
	}
	return nil
}

// Dir returns the backing directory.
func (s *FileStore) Dir() string { return s.dir }

// fileEntry wraps Entry with an explicit index of its key, so a scan can
// recover usernames without trusting file names.
type fileEntry struct {
	Username string `json:"username"`
	Name     string `json:"name"`
	Entry    *Entry `json:"entry"`
}

func (s *FileStore) path(username, name string) string {
	return filepath.Join(s.dir, sha256sum(username, name)+".json")
}

// Put implements Store with a crash-safe atomic write: the entry is written
// to a temp file, fsynced, renamed over the target, and the directory is
// fsynced so the rename itself survives a power loss. Without the syncs a
// crash between rename and writeback could leave a zero-length or torn
// credential file — losing a deposited credential the client believes is
// safely stored (paper §3: the repository is the availability anchor).
func (s *FileStore) Put(e *Entry) error {
	if e.Username == "" {
		return errEmptyUsername
	}
	data, err := json.MarshalIndent(fileEntry{Username: e.Username, Name: e.Name, Entry: e}, "", " ")
	if err != nil {
		return fmt.Errorf("credstore: encode entry: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.path(e.Username, e.Name)
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("credstore: temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("credstore: write entry: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("credstore: sync entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, target); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so a just-completed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("credstore: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("credstore: sync dir: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(username, name string) (*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readLocked(s.path(username, name))
}

func (s *FileStore) readLocked(path string) (*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("credstore: read entry: %w", err)
	}
	var fe fileEntry
	if err := json.Unmarshal(data, &fe); err != nil {
		return nil, fmt.Errorf("credstore: decode %s: %w", filepath.Base(path), err)
	}
	if fe.Entry == nil {
		return nil, fmt.Errorf("credstore: %s has no entry body", filepath.Base(path))
	}
	fe.Entry.Username, fe.Entry.Name = fe.Username, fe.Name
	fe.Entry.normalize() // JSON resurrects empty slices as non-nil
	return fe.Entry, nil
}

// List implements Store by scanning the directory.
func (s *FileStore) List(username string) ([]*Entry, error) {
	entries, err := s.scan(func(fe *Entry) bool { return fe.Username == username })
	if err != nil {
		return nil, err
	}
	sortEntries(entries)
	return entries, nil
}

// Delete implements Store.
func (s *FileStore) Delete(username, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.path(username, name))
	if os.IsNotExist(err) {
		return ErrNotFound
	}
	return err
}

// Usernames implements Store.
func (s *FileStore) Usernames() ([]string, error) {
	entries, err := s.scan(func(*Entry) bool { return true })
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if !seen[e.Username] {
			seen[e.Username] = true
			out = append(out, e.Username)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (s *FileStore) scan(keep func(*Entry) bool) ([]*Entry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dirents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("credstore: scan: %w", err)
	}
	var out []*Entry
	for _, de := range dirents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		e, err := s.readLocked(filepath.Join(s.dir, de.Name()))
		if err != nil {
			return nil, err
		}
		if keep(e) {
			out = append(out, e)
		}
	}
	return out, nil
}
