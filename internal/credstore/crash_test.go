package credstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestStaleTempFilesSweptOnOpen simulates a server that crashed mid-Put:
// the temp file exists, the rename never happened. Reopening the store must
// clean the leftovers and leave committed entries untouched.
func TestStaleTempFilesSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry := &Entry{
		Username:  "jdoe",
		Owner:     "/C=US/O=Test/CN=jdoe",
		Kind:      KindStored,
		SealedKey: []byte("sealed"),
		NotAfter:  time.Now().Add(time.Hour),
		CreatedAt: time.Now(),
	}
	if err := entry.SetPassphrase([]byte("a long test pass phrase")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(entry); err != nil {
		t.Fatal(err)
	}

	// Crash leftovers: two aborted deposits.
	for _, name := range []string{".put-1234", ".put-dead"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial"), 0o600); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: leftovers swept, committed entry intact.
	store2, err := NewFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if strings.HasPrefix(de.Name(), ".put-") {
			t.Errorf("stale temp file %s survived reopen", de.Name())
		}
	}
	got, err := store2.Get("jdoe", "")
	if err != nil {
		t.Fatalf("entry lost after sweep: %v", err)
	}
	if string(got.SealedKey) != "sealed" {
		t.Errorf("entry corrupted: %q", got.SealedKey)
	}
}

// TestPutLeavesNoTempFiles checks the happy path cleans up after itself.
func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Username: "u", NotAfter: time.Now().Add(time.Hour)}
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	dirents, _ := os.ReadDir(dir)
	for _, de := range dirents {
		if strings.HasPrefix(de.Name(), ".put-") {
			t.Errorf("temp file %s left behind", de.Name())
		}
	}
}
