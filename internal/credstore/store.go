// Package credstore implements the MyProxy repository's credential storage
// (paper §5.1): every private key at rest is sealed with the owner's pass
// phrase, so a dump of the store yields no usable keys. Public certificate
// chains are kept in the clear so the server can answer INFO queries and
// select credentials without the pass phrase.
package credstore

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/kdf"
	"repro/internal/pki"
)

// Kind distinguishes how a stored credential was deposited.
type Kind int

const (
	// KindDelegated marks a proxy credential delegated into the repository
	// with myproxy-init (paper §4.1); the repository generated the key
	// during wire delegation and sealed it immediately.
	KindDelegated Kind = iota
	// KindStored marks a long-term credential uploaded for safekeeping
	// with myproxy-store (paper §6.1); the blob was sealed by the client
	// and is opaque to the repository.
	KindStored
)

func (k Kind) String() string {
	switch k {
	case KindDelegated:
		return "delegated"
	case KindStored:
		return "stored"
	default:
		return fmt.Sprintf("credstore.Kind(%d)", int(k))
	}
}

// Entry is one stored credential.
type Entry struct {
	// Username is the user-chosen account name, typically distinct from
	// the DN (paper §4.1: "more memorable and concise than a typical DN").
	Username string
	// Name distinguishes multiple credentials per user (wallet, §6.2);
	// empty is the default credential.
	Name string
	// Owner is the Grid DN of the client that deposited the credential;
	// only the owner may destroy or re-own it.
	Owner string
	// Kind is the deposit mode.
	Kind Kind
	// CertsPEM holds the public certificate chain (leaf first) for
	// KindDelegated entries. Empty for KindStored.
	CertsPEM []byte
	// SealedKey is the pass-phrase-sealed private key (KindDelegated) or
	// the client-sealed credential container (KindStored).
	SealedKey []byte
	// Verifier authenticates the pass phrase without unsealing:
	// PBKDF2(passphrase, VerifierSalt). It lets the server reject bad pass
	// phrases for opaque KindStored blobs.
	Verifier     []byte
	VerifierSalt []byte
	VerifierIter int

	// Description is free text shown by myproxy-info.
	Description string
	// Retrievers optionally narrows which DNs may retrieve this credential.
	Retrievers string
	// MaxDelegation is the owner's retrieval restriction (§4.1).
	MaxDelegation time.Duration
	// TaskTags label the credential for wallet selection (§6.2).
	TaskTags []string
	// Renewable marks the credential as renewable without a pass phrase
	// by authorized renewers (paper §6.6); such entries are sealed under
	// an empty pass phrase.
	Renewable bool

	// NotBefore/NotAfter mirror the stored certificate validity so expiry
	// can be enforced and reported without parsing.
	NotBefore time.Time
	NotAfter  time.Time
	CreatedAt time.Time
}

// Expired reports whether the stored credential has expired.
func (e *Entry) Expired(now time.Time) bool {
	return !e.NotAfter.IsZero() && now.After(e.NotAfter)
}

// Clone returns a deep copy so callers can mutate safely. The copy is in
// canonical form (normalize).
func (e *Entry) Clone() *Entry {
	c := *e
	c.CertsPEM = append([]byte(nil), e.CertsPEM...)
	c.SealedKey = append([]byte(nil), e.SealedKey...)
	c.Verifier = append([]byte(nil), e.Verifier...)
	c.VerifierSalt = append([]byte(nil), e.VerifierSalt...)
	c.TaskTags = append([]string(nil), e.TaskTags...)
	c.normalize()
	return &c
}

// normalize puts the entry in canonical form: empty slices become nil.
// Backends must return normalized entries — an in-memory backend naturally
// drops the empty/nil distinction through Clone's append, while a JSON
// round trip resurrects empty-but-non-nil slices; without one canonical
// form, cluster replicas backed by different engines would disagree on
// byte-identical credentials.
func (e *Entry) normalize() {
	if len(e.CertsPEM) == 0 {
		e.CertsPEM = nil
	}
	if len(e.SealedKey) == 0 {
		e.SealedKey = nil
	}
	if len(e.Verifier) == 0 {
		e.Verifier = nil
	}
	if len(e.VerifierSalt) == 0 {
		e.VerifierSalt = nil
	}
	if len(e.TaskTags) == 0 {
		e.TaskTags = nil
	}
}

// Backend is the pluggable single-node persistence contract: the five
// operations every storage implementation (in-memory, directory-backed,
// and any future engine registered with RegisterBackend) must provide.
// Implementations must be safe for concurrent use, must return entries
// in canonical form (see Entry.normalize), and must use the package error
// values (ErrNotFound) so higher layers — the repository server, the
// cluster replication path — behave identically regardless of backend.
// The conformance suite in conformance_test.go enforces the contract.
type Backend interface {
	// Put inserts or replaces the entry keyed by (Username, Name).
	Put(e *Entry) error
	// Get returns the entry or ErrNotFound.
	Get(username, name string) (*Entry, error)
	// List returns all entries for username, default credential first,
	// then sorted by name. A username with no entries yields an empty
	// list, not an error.
	List(username string) ([]*Entry, error)
	// Delete removes an entry, returning ErrNotFound if absent.
	Delete(username, name string) error
	// Usernames returns all usernames with stored credentials, sorted
	// (admin and rebalance use).
	Usernames() ([]string, error)
}

// Store is the historical name for the storage interface; it is the same
// contract as Backend.
type Store = Backend

// ErrNotFound is returned for missing credentials.
var ErrNotFound = errors.New("credstore: no such credential")

// ErrBadPassphrase is returned when pass-phrase verification fails.
var ErrBadPassphrase = errors.New("credstore: pass phrase incorrect")

const verifierIterations = 4096 // fast check; the sealing KDF is the slow one

// SetPassphrase computes and installs the verifier for a pass phrase.
func (e *Entry) SetPassphrase(passphrase []byte) error {
	salt := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, salt); err != nil {
		return fmt.Errorf("credstore: salt: %w", err)
	}
	e.VerifierSalt = salt
	e.VerifierIter = verifierIterations
	//myproxy:allow secretescape the verifier digest is persisted by design; the KDF input, not this derived value, is the secret to wipe
	e.Verifier = kdf.SHA256Key(passphrase, salt, e.VerifierIter, 32)
	return nil
}

// CheckPassphrase verifies a pass phrase against the entry's verifier in
// constant time.
func (e *Entry) CheckPassphrase(passphrase []byte) error {
	if len(e.Verifier) == 0 || len(e.VerifierSalt) == 0 || e.VerifierIter <= 0 {
		return errors.New("credstore: entry has no pass phrase verifier")
	}
	got := kdf.SHA256Key(passphrase, e.VerifierSalt, e.VerifierIter, 32)
	ok := hmac.Equal(got, e.Verifier)
	pki.WipeBytes(got) // the derived verifier is pass-phrase-equivalent
	if !ok {
		return ErrBadPassphrase
	}
	return nil
}

// sha256sum is a helper for file-store naming.
func sha256sum(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// SealDelegated packages a freshly delegated credential into an entry:
// the private key is sealed under the pass phrase and the plaintext is the
// caller's responsibility to discard (paper §5.1). kdfIter <= 0 selects
// pki.DefaultKDFIterations.
func SealDelegated(e *Entry, cred *pki.Credential, passphrase []byte, kdfIter int) error {
	keyPEM, err := pki.EncryptKeyPEM(cred.PrivateKey, passphrase, kdfIter)
	if err != nil {
		return err
	}
	e.Kind = KindDelegated
	e.CertsPEM = pki.EncodeCertsPEM(cred.CertChain())
	e.SealedKey = keyPEM
	e.NotBefore = cred.Certificate.NotBefore
	e.NotAfter = cred.Certificate.NotAfter
	if err := e.SetPassphrase(passphrase); err != nil {
		return err
	}
	return nil
}

// UnsealDelegated reconstructs the delegated credential, verifying the pass
// phrase. The caller must discard the plaintext key as soon as the
// delegation completes.
//
// The sealed key is AES-GCM authenticated under the pass-phrase-derived
// key, so decryption itself proves the pass phrase; running the separate
// verifier first would double the KDF cost of every retrieval for no
// security gain. The verifier exists for entries the server cannot
// decrypt (opaque KindStored blobs) and for operations that must check
// the pass phrase without unsealing (INFO, DESTROY).
//myproxy:hotpath
func UnsealDelegated(e *Entry, passphrase []byte) (*pki.Credential, error) {
	if e.Kind != KindDelegated {
		return nil, fmt.Errorf("credstore: %s credential cannot be unsealed for delegation", e.Kind)
	}
	key, err := pki.DecryptKeyPEM(e.SealedKey, passphrase)
	if err != nil {
		if errors.Is(err, pki.ErrBadPassphrase) {
			return nil, ErrBadPassphrase
		}
		return nil, err
	}
	certs, err := pki.DecodeCertsPEM(e.CertsPEM)
	if err != nil {
		return nil, err
	}
	return &pki.Credential{Certificate: certs[0], PrivateKey: key, Chain: certs[1:]}, nil
}

// Reseal re-encrypts a delegated entry under a new pass phrase
// (myproxy-change-passphrase). Stored (opaque) entries cannot be resealed
// server-side; the client must re-upload.
func Reseal(e *Entry, oldPass, newPass []byte, kdfIter int) error {
	cred, err := UnsealDelegated(e, oldPass)
	if err != nil {
		return err
	}
	return SealDelegated(e, cred, newPass, kdfIter)
}
