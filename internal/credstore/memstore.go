package credstore

import (
	"sort"
	"sync"
)

// MemStore is an in-memory Store, used by tests, benchmarks, and embedded
// repositories.
type MemStore struct {
	mu      sync.RWMutex
	entries map[memKey]*Entry
}

type memKey struct{ username, name string }

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{entries: make(map[memKey]*Entry)}
}

// Put implements Store.
func (s *MemStore) Put(e *Entry) error {
	if e.Username == "" {
		return errEmptyUsername
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[memKey{e.Username, e.Name}] = e.Clone()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(username, name string) (*Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[memKey{username, name}]
	if !ok {
		return nil, ErrNotFound
	}
	return e.Clone(), nil
}

// List implements Store.
func (s *MemStore) List(username string) ([]*Entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Entry
	for k, e := range s.entries {
		if k.username == username {
			out = append(out, e.Clone())
		}
	}
	sortEntries(out)
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(username, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := memKey{username, name}
	if _, ok := s.entries[k]; !ok {
		return ErrNotFound
	}
	delete(s.entries, k)
	return nil
}

// Usernames implements Store.
func (s *MemStore) Usernames() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	for k := range s.entries {
		seen[k.username] = true
	}
	var out []string // nil when empty: the canonical shape shared with FileStore
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// sortEntries orders the default credential first, then by name.
func sortEntries(entries []*Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if (entries[i].Name == "") != (entries[j].Name == "") {
			return entries[i].Name == ""
		}
		return entries[i].Name < entries[j].Name
	})
}
