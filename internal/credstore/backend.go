package credstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The backend registry makes storage engines pluggable by name: a backend
// spec is "scheme" or "scheme:dsn" ("mem", "file:/var/myproxy"), and Open
// resolves it through registered constructors. myproxy-server's -backend
// flag and the cluster rebalance tooling both go through here, so a new
// engine (an embedded KV store, a remote backend) plugs in without touching
// any front-end.
var (
	backendMu sync.RWMutex
	//myproxy:guardedby backendMu
	backends = map[string]func(dsn string) (Backend, error){}
)

// RegisterBackend installs a constructor for the given scheme. Registering
// a duplicate scheme panics (a wiring bug, not a runtime condition).
func RegisterBackend(scheme string, open func(dsn string) (Backend, error)) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[scheme]; dup {
		panic(fmt.Sprintf("credstore: backend scheme %q registered twice", scheme))
	}
	backends[scheme] = open
}

// Backends returns the registered scheme names, sorted (help text, errors).
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for s := range backends {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open resolves a backend spec of the form "scheme" or "scheme:dsn".
func Open(spec string) (Backend, error) {
	scheme, dsn := spec, ""
	if i := strings.Index(spec, ":"); i >= 0 {
		scheme, dsn = spec[:i], spec[i+1:]
	}
	backendMu.RLock()
	open, ok := backends[scheme]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("credstore: unknown backend %q (have: %s)", scheme, strings.Join(Backends(), ", "))
	}
	return open(dsn)
}

func init() {
	RegisterBackend("mem", func(dsn string) (Backend, error) {
		if dsn != "" {
			return nil, fmt.Errorf("credstore: mem backend takes no dsn, got %q", dsn)
		}
		return NewMemStore(), nil
	})
	RegisterBackend("file", func(dsn string) (Backend, error) {
		if dsn == "" {
			return nil, fmt.Errorf("credstore: file backend needs a directory (file:<dir>)")
		}
		return NewFileStore(dsn)
	})
}
