package credstore

// The backend conformance suite: every Backend implementation must pass the
// same behavioral assertions, because cluster replicas are interchangeable
// only if a credential reads back identically — same bytes, same error
// shapes, same ordering — regardless of the engine underneath. New backends
// registered with RegisterBackend should add themselves to newConformance
// Backends and nothing else.

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// conformanceBackends enumerates the implementations under test, each with
// a fresh, empty store per invocation.
func conformanceBackends(t *testing.T) map[string]func(t *testing.T) Backend {
	return map[string]func(t *testing.T) Backend{
		"mem": func(t *testing.T) Backend { return NewMemStore() },
		"file": func(t *testing.T) Backend {
			s, err := NewFileStore(t.TempDir())
			if err != nil {
				t.Fatalf("NewFileStore: %v", err)
			}
			return s
		},
	}
}

func forEachBackend(t *testing.T, run func(t *testing.T, s Backend)) {
	for name, mk := range conformanceBackends(t) {
		t.Run(name, func(t *testing.T) { run(t, mk(t)) })
	}
}

// testEntry builds a fully populated entry; CreatedAt uses an explicit UTC
// wall time because backends that round-trip through an encoding cannot
// preserve Go's monotonic clock reading.
func testEntry(username, name string) *Entry {
	return &Entry{
		Username:      username,
		Name:          name,
		Owner:         "/C=US/O=Test/CN=owner",
		Kind:          KindDelegated,
		CertsPEM:      []byte("-----BEGIN CERTIFICATE-----\nAA==\n-----END CERTIFICATE-----\n"),
		SealedKey:     []byte("sealed-key-bytes"),
		Verifier:      []byte{1, 2, 3},
		VerifierSalt:  []byte{4, 5, 6},
		VerifierIter:  4096,
		Description:   "conformance entry",
		Retrievers:    "/C=US/O=Test/*",
		MaxDelegation: 2 * time.Hour,
		TaskTags:      []string{"alpha", "beta"},
		NotBefore:     time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:      time.Date(2026, 12, 31, 0, 0, 0, 0, time.UTC),
		CreatedAt:     time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC),
	}
}

func TestConformanceRoundTrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		want := testEntry("alice", "job")
		if err := s.Put(want); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := s.Get("alice", "job")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	})
}

// TestConformanceEmptySliceShape is the divergence that motivated
// Entry.normalize: an entry deposited with empty-but-non-nil slices must
// read back identically from every backend (the in-memory store's Clone
// drops empties to nil; a JSON round trip used to resurrect them non-nil).
func TestConformanceEmptySliceShape(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		e := testEntry("alice", "")
		e.CertsPEM = []byte{}
		e.TaskTags = []string{}
		e.Verifier = []byte{}
		e.VerifierSalt = []byte{}
		if err := s.Put(e); err != nil {
			t.Fatalf("Put: %v", err)
		}
		got, err := s.Get("alice", "")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.CertsPEM != nil || got.TaskTags != nil || got.Verifier != nil || got.VerifierSalt != nil {
			t.Errorf("empty slices not canonicalized to nil: %+v", got)
		}
	})
}

func TestConformanceMissingUser(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		if _, err := s.Get("ghost", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get missing: got %v, want ErrNotFound", err)
		}
		if err := s.Delete("ghost", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete missing: got %v, want ErrNotFound", err)
		}
		entries, err := s.List("ghost")
		if err != nil {
			t.Errorf("List missing user: got error %v, want empty list", err)
		}
		if len(entries) != 0 {
			t.Errorf("List missing user: got %d entries", len(entries))
		}
	})
}

func TestConformanceEmptyUsernameRejected(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		if err := s.Put(testEntry("", "")); err == nil {
			t.Error("Put with empty username succeeded")
		}
	})
}

func TestConformanceListOrderAndIsolation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		for _, name := range []string{"zeta", "", "alpha"} {
			if err := s.Put(testEntry("alice", name)); err != nil {
				t.Fatalf("Put %q: %v", name, err)
			}
		}
		if err := s.Put(testEntry("bob", "")); err != nil {
			t.Fatalf("Put bob: %v", err)
		}
		entries, err := s.List("alice")
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		var names []string
		for _, e := range entries {
			names = append(names, e.Name)
		}
		if want := []string{"", "alpha", "zeta"}; !reflect.DeepEqual(names, want) {
			t.Errorf("List order: got %v, want %v", names, want)
		}
		// Mutating a returned entry must not affect the store.
		entries[0].Description = "mutated"
		entries[0].TaskTags[0] = "mutated"
		again, err := s.Get("alice", "")
		if err != nil {
			t.Fatalf("Get after mutation: %v", err)
		}
		if again.Description == "mutated" || again.TaskTags[0] == "mutated" {
			t.Error("mutating a returned entry leaked into the store")
		}
	})
}

func TestConformanceOverwriteAndDelete(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		if err := s.Put(testEntry("alice", "")); err != nil {
			t.Fatalf("Put: %v", err)
		}
		repl := testEntry("alice", "")
		repl.Description = "replaced"
		if err := s.Put(repl); err != nil {
			t.Fatalf("Put overwrite: %v", err)
		}
		got, err := s.Get("alice", "")
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		if got.Description != "replaced" {
			t.Errorf("overwrite did not replace: %q", got.Description)
		}
		if err := s.Delete("alice", ""); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if _, err := s.Get("alice", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get after delete: got %v, want ErrNotFound", err)
		}
		// A second delete of the same key is the missing-entry shape again.
		if err := s.Delete("alice", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("double Delete: got %v, want ErrNotFound", err)
		}
	})
}

func TestConformanceUsernames(t *testing.T) {
	forEachBackend(t, func(t *testing.T, s Backend) {
		empty, err := s.Usernames()
		if err != nil {
			t.Fatalf("Usernames empty: %v", err)
		}
		if empty != nil {
			t.Errorf("Usernames on empty store: got %v, want nil", empty)
		}
		for _, u := range []string{"carol", "alice", "bob", "alice"} {
			if err := s.Put(testEntry(u, "x")); err != nil {
				t.Fatalf("Put %s: %v", u, err)
			}
		}
		got, err := s.Usernames()
		if err != nil {
			t.Fatalf("Usernames: %v", err)
		}
		if want := []string{"alice", "bob", "carol"}; !reflect.DeepEqual(got, want) {
			t.Errorf("Usernames: got %v, want %v", got, want)
		}
	})
}

func TestOpenBackendRegistry(t *testing.T) {
	if _, err := Open("mem"); err != nil {
		t.Errorf("Open mem: %v", err)
	}
	if _, err := Open("file:" + t.TempDir()); err != nil {
		t.Errorf("Open file: %v", err)
	}
	if _, err := Open("file"); err == nil {
		t.Error("Open file without dir succeeded")
	}
	if _, err := Open("mem:extra"); err == nil {
		t.Error("Open mem with dsn succeeded")
	}
	if _, err := Open("bogus"); err == nil {
		t.Error("Open bogus succeeded")
	}
}
