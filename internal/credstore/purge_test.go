package credstore

import (
	"errors"
	"testing"
	"time"
)

func TestPurgeExpired(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		live := sampleEntry(t, "alice", "live")
		live.NotAfter = time.Now().Add(time.Hour)
		dead := sampleEntry(t, "alice", "dead")
		dead.NotAfter = time.Now().Add(-time.Hour)
		deadBob := sampleEntry(t, "bob", "")
		deadBob.NotAfter = time.Now().Add(-time.Minute)
		for _, e := range []*Entry{live, dead, deadBob} {
			if err := s.Put(e); err != nil {
				t.Fatal(err)
			}
		}
		// Dry run reports but removes nothing.
		n, err := PurgeExpired(s, time.Now(), true)
		if err != nil || n != 2 {
			t.Fatalf("dry run = %d, %v", n, err)
		}
		if _, err := s.Get("alice", "dead"); err != nil {
			t.Fatal("dry run deleted an entry")
		}
		// Real purge removes the two expired entries only.
		n, err = PurgeExpired(s, time.Now(), false)
		if err != nil || n != 2 {
			t.Fatalf("purge = %d, %v", n, err)
		}
		if _, err := s.Get("alice", "live"); err != nil {
			t.Error("live entry purged")
		}
		if _, err := s.Get("alice", "dead"); !errors.Is(err, ErrNotFound) {
			t.Error("expired entry survived")
		}
		if _, err := s.Get("bob", ""); !errors.Is(err, ErrNotFound) {
			t.Error("bob's expired entry survived")
		}
	})
}

func TestPurgeExpiredEmptyStore(t *testing.T) {
	n, err := PurgeExpired(NewMemStore(), time.Now(), false)
	if err != nil || n != 0 {
		t.Fatalf("empty purge = %d, %v", n, err)
	}
}

// Entries with zero NotAfter (e.g. opaque stored blobs without parsed
// validity) must never be purged.
func TestPurgeSkipsZeroNotAfter(t *testing.T) {
	s := NewMemStore()
	e := sampleEntry(t, "alice", "blob")
	e.NotAfter = time.Time{}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	n, err := PurgeExpired(s, time.Now(), false)
	if err != nil || n != 0 {
		t.Fatalf("purge = %d, %v", n, err)
	}
}
