package credstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// A corrupted entry file must fail loudly with the file name — a
// repository silently skipping store entries would hide tampering.
func TestFileStoreCorruptEntryFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(sampleEntry(t, "alice", "")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var target string
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".json") {
			target = filepath.Join(dir, de.Name())
		}
	}
	if target == "" {
		t.Fatal("no entry file found")
	}
	if err := os.WriteFile(target, []byte("{corrupt"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Get("alice", ""); err == nil {
		t.Error("corrupt entry read successfully")
	}
	if _, err := fs.List("alice"); err == nil {
		t.Error("List succeeded over a corrupt entry")
	} else if !strings.Contains(err.Error(), filepath.Base(target)) {
		t.Errorf("error does not name the corrupt file: %v", err)
	}
}

// An entry file missing its body is rejected.
func TestFileStoreEmptyBodyRejected(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(sampleEntry(t, "alice", "")); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	for _, de := range entries {
		if strings.HasSuffix(de.Name(), ".json") {
			os.WriteFile(filepath.Join(dir, de.Name()),
				[]byte(`{"username":"alice","name":""}`), 0o600)
		}
	}
	if _, err := fs.Get("alice", ""); err == nil {
		t.Error("entry without body accepted")
	}
}

// Non-JSON junk files in the store directory are ignored by scans.
func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(sampleEntry(t, "alice", "")); err != nil {
		t.Fatal(err)
	}
	list, err := fs.List("alice")
	if err != nil || len(list) != 1 {
		t.Errorf("List = %d, %v", len(list), err)
	}
	users, err := fs.Usernames()
	if err != nil || len(users) != 1 {
		t.Errorf("Usernames = %v, %v", users, err)
	}
}
