package credstore

import (
	"errors"
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// storeImpls runs a subtest against each Store implementation.
func storeImpls(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMemStore()) })
	t.Run("file", func(t *testing.T) {
		fs, err := NewFileStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, fs)
	})
}

func sampleEntry(t *testing.T, username, name string) *Entry {
	t.Helper()
	e := &Entry{
		Username:      username,
		Name:          name,
		Owner:         "/C=US/O=Test Grid/CN=" + username,
		Kind:          KindDelegated,
		CertsPEM:      []byte("-----BEGIN CERTIFICATE-----\nfake\n-----END CERTIFICATE-----\n"),
		SealedKey:     []byte("sealed"),
		Description:   "sample",
		MaxDelegation: time.Hour,
		TaskTags:      []string{"hpc"},
		NotBefore:     time.Now().Add(-time.Minute).UTC().Truncate(time.Second),
		NotAfter:      time.Now().Add(time.Hour).UTC().Truncate(time.Second),
		CreatedAt:     time.Now().UTC().Truncate(time.Second),
	}
	if err := e.SetPassphrase([]byte("entry pass phrase")); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStoreCRUD(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		e := sampleEntry(t, "jdoe", "")
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("jdoe", "")
		if err != nil {
			t.Fatal(err)
		}
		if got.Owner != e.Owner || got.Description != e.Description ||
			string(got.SealedKey) != string(e.SealedKey) ||
			!got.NotAfter.Equal(e.NotAfter) || got.MaxDelegation != e.MaxDelegation {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
		}
		if _, err := s.Get("jdoe", "missing"); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing name: %v", err)
		}
		if _, err := s.Get("nobody", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("missing user: %v", err)
		}
		if err := s.Delete("jdoe", ""); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get("jdoe", ""); !errors.Is(err, ErrNotFound) {
			t.Error("entry survived delete")
		}
		if err := s.Delete("jdoe", ""); !errors.Is(err, ErrNotFound) {
			t.Errorf("double delete: %v", err)
		}
	})
}

func TestStoreRejectsEmptyUsername(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		if err := s.Put(&Entry{}); err == nil {
			t.Error("empty username accepted")
		}
	})
}

func TestStoreReplace(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		e := sampleEntry(t, "jdoe", "")
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		e2 := sampleEntry(t, "jdoe", "")
		e2.Description = "replaced"
		if err := s.Put(e2); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get("jdoe", "")
		if err != nil {
			t.Fatal(err)
		}
		if got.Description != "replaced" {
			t.Errorf("Put did not replace: %q", got.Description)
		}
	})
}

func TestStoreListOrdering(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for _, name := range []string{"zeta", "", "alpha"} {
			if err := s.Put(sampleEntry(t, "jdoe", name)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Put(sampleEntry(t, "other", "x")); err != nil {
			t.Fatal(err)
		}
		list, err := s.List("jdoe")
		if err != nil {
			t.Fatal(err)
		}
		if len(list) != 3 {
			t.Fatalf("List returned %d entries", len(list))
		}
		if list[0].Name != "" || list[1].Name != "alpha" || list[2].Name != "zeta" {
			t.Errorf("order = %q, %q, %q", list[0].Name, list[1].Name, list[2].Name)
		}
		empty, err := s.List("nobody")
		if err != nil || len(empty) != 0 {
			t.Errorf("List(nobody) = %v, %v", empty, err)
		}
	})
}

func TestStoreUsernames(t *testing.T) {
	storeImpls(t, func(t *testing.T, s Store) {
		for _, u := range []string{"carol", "alice", "bob", "alice"} {
			if err := s.Put(sampleEntry(t, u, "")); err != nil {
				t.Fatal(err)
			}
		}
		users, err := s.Usernames()
		if err != nil {
			t.Fatal(err)
		}
		if len(users) != 3 || users[0] != "alice" || users[1] != "bob" || users[2] != "carol" {
			t.Errorf("Usernames = %v", users)
		}
	})
}

func TestStoreIsolationFromCallerMutation(t *testing.T) {
	s := NewMemStore()
	e := sampleEntry(t, "jdoe", "")
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	e.SealedKey[0] = 'X' // caller mutates after Put
	got, _ := s.Get("jdoe", "")
	if got.SealedKey[0] == 'X' {
		t.Error("store aliased caller's slice")
	}
	got.TaskTags[0] = "mutated" // caller mutates result
	again, _ := s.Get("jdoe", "")
	if again.TaskTags[0] == "mutated" {
		t.Error("store aliased returned slice")
	}
}

func TestPassphraseVerifier(t *testing.T) {
	e := &Entry{}
	if err := e.SetPassphrase([]byte("open sesame")); err != nil {
		t.Fatal(err)
	}
	if err := e.CheckPassphrase([]byte("open sesame")); err != nil {
		t.Errorf("correct pass phrase rejected: %v", err)
	}
	if err := e.CheckPassphrase([]byte("wrong")); !errors.Is(err, ErrBadPassphrase) {
		t.Errorf("wrong pass phrase: %v", err)
	}
	if err := (&Entry{}).CheckPassphrase([]byte("x")); err == nil {
		t.Error("entry without verifier accepted a pass phrase")
	}
}

func TestSealUnsealDelegated(t *testing.T) {
	user := testpki.User(t, "store-alice")
	p, err := proxy.New(user, proxy.Options{Type: proxy.RFC3820, Lifetime: time.Hour, KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Username: "alice", Owner: user.Subject()}
	pass := []byte("store pass phrase")
	if err := SealDelegated(e, p, pass, 64); err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindDelegated {
		t.Error("kind not set")
	}
	if !e.NotAfter.Equal(p.Certificate.NotAfter) {
		t.Error("validity not mirrored")
	}
	back, err := UnsealDelegated(e, pass)
	if err != nil {
		t.Fatalf("UnsealDelegated: %v", err)
	}
	if !pki.PublicKeysEqual(back.PrivateKey.Public(), p.PrivateKey.Public()) {
		t.Error("key mismatch")
	}
	if back.Subject() != p.Subject() {
		t.Error("certificate mismatch")
	}
	if len(back.Chain) != len(p.Chain) {
		t.Errorf("chain length %d, want %d", len(back.Chain), len(p.Chain))
	}
	if _, err := UnsealDelegated(e, []byte("wrong")); !errors.Is(err, ErrBadPassphrase) {
		t.Errorf("wrong pass: %v", err)
	}
	stored := &Entry{Kind: KindStored}
	if _, err := UnsealDelegated(stored, pass); err == nil {
		t.Error("KindStored unsealed as delegated")
	}
}

func TestReseal(t *testing.T) {
	user := testpki.User(t, "store-alice")
	p, err := proxy.New(user, proxy.Options{Type: proxy.Legacy, Lifetime: time.Hour, KeyBits: 1024})
	if err != nil {
		t.Fatal(err)
	}
	e := &Entry{Username: "alice"}
	oldPass, newPass := []byte("old pass phrase"), []byte("new pass phrase")
	if err := SealDelegated(e, p, oldPass, 64); err != nil {
		t.Fatal(err)
	}
	if err := Reseal(e, []byte("bad"), newPass, 64); !errors.Is(err, ErrBadPassphrase) {
		t.Errorf("reseal with bad pass: %v", err)
	}
	if err := Reseal(e, oldPass, newPass, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := UnsealDelegated(e, oldPass); err == nil {
		t.Error("old pass phrase still works after reseal")
	}
	if _, err := UnsealDelegated(e, newPass); err != nil {
		t.Errorf("new pass phrase rejected: %v", err)
	}
	if err := e.CheckPassphrase(newPass); err != nil {
		t.Errorf("verifier not updated: %v", err)
	}
}

func TestEntryExpired(t *testing.T) {
	e := &Entry{NotAfter: time.Now().Add(-time.Minute)}
	if !e.Expired(time.Now()) {
		t.Error("expired entry not reported")
	}
	e.NotAfter = time.Now().Add(time.Minute)
	if e.Expired(time.Now()) {
		t.Error("valid entry reported expired")
	}
	if (&Entry{}).Expired(time.Now()) {
		t.Error("zero NotAfter treated as expired")
	}
}

func TestKindString(t *testing.T) {
	if KindDelegated.String() != "delegated" || KindStored.String() != "stored" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "credstore.Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(sampleEntry(t, "jdoe", "persistent")); err != nil {
		t.Fatal(err)
	}
	// Re-open the same directory: the entry must still be there.
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Get("jdoe", "persistent")
	if err != nil {
		t.Fatal(err)
	}
	if got.Username != "jdoe" || got.Name != "persistent" {
		t.Errorf("got %q/%q", got.Username, got.Name)
	}
}
