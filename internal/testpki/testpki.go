// Package testpki provides shared, lazily built PKI fixtures for tests and
// benchmarks. RSA key generation dominates test runtime, so fixtures (CA,
// user credentials, host credentials, raw keys) are created once per process
// and reused; tests must treat them as read-only.
package testpki

import (
	"crypto/rand"
	"crypto/rsa"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pki"
)

var (
	mu    sync.Mutex
	ca    *pki.CA
	keys  []*rsa.PrivateKey
	users = map[string]*pki.Credential{}
	hosts = map[string]*pki.Credential{}
)

// BaseDN is the organizational prefix for all test identities.
var BaseDN = pki.MustParseDN("/C=US/O=Test Grid/OU=Testing")

// CA returns the shared test certificate authority.
func CA(t testing.TB) *pki.CA {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	if ca == nil {
		var err error
		ca, err = pki.NewCA(pki.CAConfig{
			Name: pki.MustParseDN("/C=US/O=Test Grid/CN=Test CA"),
			Key:  newKeyLocked(t),
		})
		if err != nil {
			t.Fatalf("testpki: create CA: %v", err)
		}
	}
	return ca
}

// Key returns the i-th shared RSA test key, generating it on first use.
// Distinct indexes return distinct keys.
func Key(t testing.TB, i int) *rsa.PrivateKey {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	for len(keys) <= i {
		keys = append(keys, newKeyLocked(t))
	}
	return keys[i]
}

func newKeyLocked(t testing.TB) *rsa.PrivateKey {
	t.Helper()
	k, err := rsa.GenerateKey(rand.Reader, 1024)
	if err != nil {
		t.Fatalf("testpki: generate key: %v", err)
	}
	return k
}

// User returns a long-term user credential for /…/CN=name signed by the
// shared CA, cached per name, valid for one year.
func User(t testing.TB, name string) *pki.Credential {
	t.Helper()
	authority := CA(t)
	mu.Lock()
	defer mu.Unlock()
	if cred, ok := users[name]; ok {
		return cred
	}
	key := newKeyLocked(t)
	cert, err := authority.Issue(pki.IssueRequest{
		Subject:   BaseDN.WithCN(name),
		PublicKey: &key.PublicKey,
		Lifetime:  365 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatalf("testpki: issue user %q: %v", name, err)
	}
	cred := &pki.Credential{Certificate: cert, PrivateKey: key}
	users[name] = cred
	return cred
}

// Host returns a host/service credential for the given hostname, cached per
// name, valid for one year. The DNS SAN covers hostname and "localhost".
func Host(t testing.TB, hostname string) *pki.Credential {
	t.Helper()
	authority := CA(t)
	mu.Lock()
	defer mu.Unlock()
	if cred, ok := hosts[hostname]; ok {
		return cred
	}
	key := newKeyLocked(t)
	cert, err := authority.Issue(pki.IssueRequest{
		Subject:   BaseDN.WithCN(hostname),
		PublicKey: &key.PublicKey,
		Lifetime:  365 * 24 * time.Hour,
		IsHost:    true,
		DNSNames:  []string{hostname, "localhost", "127.0.0.1"},
	})
	if err != nil {
		t.Fatalf("testpki: issue host %q: %v", hostname, err)
	}
	cred := &pki.Credential{Certificate: cert, PrivateKey: key}
	hosts[hostname] = cred
	return cred
}

// UniqueName returns a name unlikely to collide across test cases that need
// fresh identities within the shared CA namespace.
var nameCounter int

// FreshName returns "prefix-N" with a process-unique N.
func FreshName(prefix string) string {
	mu.Lock()
	defer mu.Unlock()
	nameCounter++
	return fmt.Sprintf("%s-%d", prefix, nameCounter)
}
