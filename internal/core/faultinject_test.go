package core

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/gsi"
	"repro/internal/pki"
	"repro/internal/resilience"
	"repro/internal/testpki"
)

// fastRetry is a prompt policy for tests: tight backoff, no jitter delay
// surprises.
func fastRetry(attempts int) resilience.Policy {
	return resilience.Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Jitter:      0.01,
	}
}

// --- Acceptance (a): Get rides out connect failures and a handshake reset.

func TestGetSurvivesConnectFailuresAndHandshakeReset(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	script := faultnet.NewScript(
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect}, // attempt 1: refused
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect}, // attempt 2: refused
		faultnet.Plan{ResetAfterBytesWritten: 64},                // attempt 3: reset mid-TLS-handshake
		// attempt 4: clean
	)
	stats := &Stats{}
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.DialContext = (&faultnet.Dialer{Script: script}).DialContext
	cli.Retry = fastRetry(4)
	cli.Stats = stats

	cred, err := cli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass})
	if err != nil {
		t.Fatalf("Get through faults: %v", err)
	}
	if cred == nil || cred.PrivateKey == nil {
		t.Fatal("no credential delegated")
	}
	if got := script.Consumed(); got != 4 {
		t.Errorf("dial attempts = %d, want 4", got)
	}
	if got := stats.Retries.Load(); got != 3 {
		t.Errorf("retries counted = %d, want 3", got)
	}
	// The repository saw exactly one completed session.
	if got := srv.Stats().Gets.Load(); got != 1 {
		t.Errorf("server gets = %d, want 1", got)
	}
}

// Without a retry policy the first fault is fatal — the pre-resilience
// behavior is preserved for zero-value clients.
func TestZeroPolicyFailsOnFirstFault(t *testing.T) {
	_, addr := startServer(t, nil)
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.DialContext = (&faultnet.Dialer{Script: faultnet.NewScript(
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect},
	)}).DialContext
	if _, err := cli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass}); !errors.Is(err, faultnet.ErrInjectedConnect) {
		t.Fatalf("err = %v, want injected connect failure", err)
	}
}

// Server verdicts are permanent: a wrong pass phrase must not burn retries
// (each retry would hammer the repository and could trip lockouts).
func TestServerVerdictNotRetried(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.Retry = fastRetry(5)
	stats := &Stats{}
	cli.Stats = stats
	_, err := cli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: "wrong wrong"})
	if err == nil || !strings.Contains(err.Error(), "bad pass phrase") {
		t.Fatalf("err = %v", err)
	}
	if got := stats.Retries.Load(); got != 0 {
		t.Errorf("permanent verdict retried %d times", got)
	}
	// Exactly one session reached the server.
	if got := srv.Stats().Connections.Load(); got != 2 { // 1 for Put + 1 for Get
		t.Errorf("connections = %d, want 2", got)
	}
}

// fakeRepository accepts GSI sessions and lets a test script the server side
// of the protocol by hand (e.g. vanish before confirming).
type fakeRepository struct {
	ln    net.Listener
	cred  *pki.Credential
	roots *x509Pool
}

func startFakeRepository(t *testing.T, handle func(conn *gsi.Conn)) string {
	t.Helper()
	ln, err := listenLoopback(t)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeRepository{ln: ln, cred: testpki.Host(t, "myproxy.test"), roots: testRoots(t)}
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				conn, err := gsi.Server(raw, f.cred, gsi.AuthOptions{Roots: f.roots, HandshakeTimeout: 5 * time.Second})
				if err != nil {
					raw.Close()
					return
				}
				defer conn.Close()
				handle(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// --- Post-commit ambiguity: a mutation whose confirmation is lost is
// surfaced, not replayed.

func TestDestroyAmbiguousAfterLostConfirmation(t *testing.T) {
	var sessions struct {
		sync.Mutex
		n int
	}
	addr := startFakeRepository(t, func(conn *gsi.Conn) {
		sessions.Lock()
		sessions.n++
		sessions.Unlock()
		// Read the DESTROY request, then vanish without answering: the
		// client cannot know whether the credential is gone.
		conn.ReadMessage()
	})
	stats := &Stats{}
	cli := newClient(t, testpki.User(t, "core-alice"), addr)
	cli.Retry = fastRetry(5)
	cli.Stats = stats
	err := cli.Destroy(context.Background(), testUser, testPass, "")
	if !resilience.IsAmbiguous(err) {
		t.Fatalf("err = %v, want ambiguous", err)
	}
	var ae *resilience.AmbiguousError
	if !errors.As(err, &ae) || ae.Op != "DESTROY" {
		t.Errorf("ambiguous op = %+v", ae)
	}
	sessions.Lock()
	n := sessions.n
	sessions.Unlock()
	if n != 1 {
		t.Errorf("ambiguous DESTROY retried: %d sessions", n)
	}
	if stats.Ambiguous.Load() != 1 {
		t.Errorf("ambiguous counter = %d", stats.Ambiguous.Load())
	}
}

// Pre-response faults on mutations ARE retried: a connect failure before
// the request ever left cannot have committed anything.
func TestDestroyRetriesConnectFailures(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	cli := newClient(t, alice, addr)
	cli.DialContext = (&faultnet.Dialer{Script: faultnet.NewScript(
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect},
		faultnet.Plan{ConnectError: faultnet.ErrInjectedConnect},
	)}).DialContext
	cli.Retry = fastRetry(3)
	if err := cli.Destroy(context.Background(), testUser, testPass, ""); err != nil {
		t.Fatalf("Destroy with retries: %v", err)
	}
}

// --- Satellite: context cancellation aborts in-flight round trips, not
// just the dial.

func TestContextCancelAbortsInFlightRoundTrip(t *testing.T) {
	release := make(chan struct{})
	addr := startFakeRepository(t, func(conn *gsi.Conn) {
		conn.ReadMessage() // swallow the request...
		<-release          // ...and never answer until the test ends
	})
	defer close(release)
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.Timeout = time.Hour // the context, not the timeout, must cut this off
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := cli.Get(ctx, GetOptions{Username: testUser, Passphrase: testPass})
	if err == nil {
		t.Fatal("cancelled Get succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; in-flight round trip not aborted", elapsed)
	}
}

// --- Acceptance (b): a stalled reader is evicted by the per-message
// deadline without taking other sessions down with it.

func TestStalledClientEvictedByMessageDeadline(t *testing.T) {
	// MessageTimeout must be well under the 10s session budget to prove
	// per-message eviction, but not so tight that the live client's own
	// think-time (RSA keygen between messages) trips it on a loaded
	// machine.
	srv, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.RequestTimeout = 10 * time.Second
		cfg.MessageTimeout = 2 * time.Second
	})
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	// The slowloris: completes the handshake, then goes silent.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	stalled, err := gsi.Client(raw, testpki.Host(t, "portal.test"), gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// While the stalled session occupies the server, a live client works.
	if _, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	}); err != nil {
		t.Fatalf("live Get alongside stalled session: %v", err)
	}

	// The stalled session is evicted at the message deadline, well before
	// the 10s session budget.
	deadline := time.Now().Add(8 * time.Second)
	for srv.Stats().Timeouts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The server hung up on it: the stalled side sees EOF/reset.
	stalled.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := stalled.ReadMessage(); err == nil {
		t.Error("evicted session still delivered data")
	}
}

// With MaxConcurrent=1 the per-message deadline is what frees the slot: the
// stalled client would otherwise starve everyone (accept backpressure).
func TestStalledClientFreesSlotUnderBackpressure(t *testing.T) {
	// As above: short enough to free the slot quickly, generous enough
	// that the live client's keygen pauses don't trip it under load.
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.RequestTimeout = 10 * time.Second
		cfg.MessageTimeout = 2 * time.Second
		cfg.MaxConcurrent = 1
	})
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	stalled, err := gsi.Client(raw, testpki.Host(t, "portal.test"), gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// The live client queues behind the stalled one until the eviction
	// frees the only slot; it must still succeed.
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.Timeout = 8 * time.Second
	if _, err := cli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass}); err != nil {
		t.Fatalf("Get behind stalled session: %v", err)
	}
}

// --- Acceptance (c): Close drains in-flight work and refuses new arrivals.

func TestCloseDrainsInFlightDelegation(t *testing.T) {
	srv, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.DrainTimeout = 10 * time.Second
	})
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	// Slow the client's reads so the delegation is reliably in flight when
	// Close lands.
	cli := newClient(t, testpki.Host(t, "portal.test"), addr)
	cli.DialContext = (&faultnet.Dialer{Script: faultnet.NewScript(
		faultnet.Plan{ReadDelay: 20 * time.Millisecond},
	)}).DialContext

	type result struct {
		cred *pki.Credential
		err  error
	}
	done := make(chan result, 1)
	go func() {
		cred, err := cli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass})
		done <- result{cred, err}
	}()

	// Wait until the session is authenticated and in flight.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Connections.Load() < 2 { // 1 Put + this Get
		if time.Now().After(deadline) {
			t.Fatal("Get session never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The in-flight delegation completed despite the shutdown.
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight Get interrupted by drain: %v", res.err)
	}
	if res.cred == nil || res.cred.PrivateKey == nil {
		t.Fatal("drained Get returned no credential")
	}
	if srv.Stats().ForcedCloses.Load() != 0 {
		t.Errorf("drain force-closed %d sessions", srv.Stats().ForcedCloses.Load())
	}

	// New connections are refused: the listener is down...
	if _, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	}); err == nil {
		t.Error("Get after Close succeeded")
	}
	// ...and direct hand-offs are refused and counted.
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	srv.HandleConn(c2)
	if got := srv.Stats().DrainRefusals.Load(); got != 1 {
		t.Errorf("drain refusals = %d, want 1", got)
	}
}

// A session that outlives the drain timeout is force-closed rather than
// holding shutdown hostage.
func TestDrainTimeoutForceClosesStragglers(t *testing.T) {
	srv, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.RequestTimeout = 30 * time.Second
		cfg.DrainTimeout = 200 * time.Millisecond
	})
	// A client that handshakes and then stalls forever holds a session open.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	stalled, err := gsi.Client(raw, testpki.Host(t, "portal.test"), gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Connections.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled session never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close took %v; drain timeout not applied", elapsed)
	}
	if got := srv.Stats().ForcedCloses.Load(); got != 1 {
		t.Errorf("forced closes = %d, want 1", got)
	}
}
