package core

import (
	"testing"

	"repro/internal/credstore"
	"repro/internal/testpki"
)

// TestUnsealCacheRoundtrip is the regression test for the lookup-side key
// hoist: unsealKey is now computed outside the mutex in lookup (mirroring
// add), and the two sides must keep deriving the identical key for the
// same (sealed bytes, pass phrase) pair — and different keys the moment
// either input changes — or session streams would re-run the KDF (cache
// misses) or, far worse, serve another user's credential (cross-key hits).
func TestUnsealCacheRoundtrip(t *testing.T) {
	cred := testpki.User(t, "unseal-cache-alice")
	entry := &credstore.Entry{SealedKey: []byte("sealed-key-bytes-1")}
	other := &credstore.Entry{SealedKey: []byte("sealed-key-bytes-2")}
	passphrase := []byte("correct horse battery staple")

	sc := &unsealCache{}
	if got := sc.lookup(entry, passphrase); got != nil {
		t.Fatalf("lookup on empty cache = %v, want nil", got)
	}
	if !sc.add(entry, passphrase, cred) {
		t.Fatal("first add should take ownership")
	}
	if got := sc.lookup(entry, passphrase); got != cred {
		t.Fatalf("lookup after add = %v, want the cached credential", got)
	}
	// Same sealed bytes, different pass phrase: a miss, not a cross hit.
	if got := sc.lookup(entry, []byte("wrong phrase")); got != nil {
		t.Fatalf("lookup with different passphrase = %v, want nil", got)
	}
	// Different sealed bytes (reseal / replacement PUT): also a miss.
	if got := sc.lookup(other, passphrase); got != nil {
		t.Fatalf("lookup with different sealed key = %v, want nil", got)
	}
	// A racing second add for the same key must not take ownership.
	if sc.add(entry, passphrase, testpki.User(t, "unseal-cache-bob")) {
		t.Fatal("second add for the same key should report not-owned")
	}
	if got := sc.lookup(entry, passphrase); got != cred {
		t.Fatal("second add displaced the cached credential")
	}

	// Nil receiver: single-exchange connections have no cache.
	var nilCache *unsealCache
	if nilCache.lookup(entry, passphrase) != nil {
		t.Fatal("nil cache lookup should return nil")
	}
	if nilCache.add(entry, passphrase, cred) {
		t.Fatal("nil cache add should not take ownership")
	}

	sc.wipe()
	if got := sc.lookup(entry, passphrase); got != nil {
		t.Fatal("lookup after wipe should miss")
	}
	if cred.PrivateKey != nil {
		t.Fatal("wipe should nil out the cached private key")
	}
}
