package core

import (
	"fmt"

	"repro/internal/credstore"
	"repro/internal/policy"
)

func policyMatch(pattern, dn string) bool { return policy.MatchDN(pattern, dn) }

// selectEntry resolves which stored credential a request addresses.
//
// With an explicit credential name the choice is exact. Otherwise the
// repository acts as the paper's "electronic wallet" (§6.2): given a task
// hint it selects, among the user's unexpired credentials, one tagged for
// that task — preferring the most specific tag set, then the longest
// remaining validity; with no hint it returns the default credential, or
// the only credential if exactly one exists.
func (s *Server) selectEntry(username, credName, taskHint string) (*credstore.Entry, error) {
	if credName != "" {
		return s.store.Get(username, credName)
	}
	if taskHint == "" {
		// Default credential, falling back to a sole named credential.
		if e, err := s.store.Get(username, ""); err == nil {
			return e, nil
		}
		entries, err := s.store.List(username)
		if err != nil {
			return nil, err
		}
		if len(entries) == 1 {
			return entries[0], nil
		}
		if len(entries) == 0 {
			return nil, credstore.ErrNotFound
		}
		return nil, fmt.Errorf("%w: %d credentials; specify a name or task", credstore.ErrNotFound, len(entries))
	}
	entries, err := s.store.List(username)
	if err != nil {
		return nil, err
	}
	now := s.cfg.now()
	var best *credstore.Entry
	bestSpecificity := -1
	for _, e := range entries {
		if e.Expired(now) || !tagged(e, taskHint) {
			continue
		}
		// Prefer fewer tags (more specific purpose); break ties with the
		// longest remaining validity so renewals favor fresh credentials.
		spec := len(e.TaskTags)
		switch {
		case best == nil,
			spec < bestSpecificity,
			spec == bestSpecificity && e.NotAfter.After(best.NotAfter):
			best = e
			bestSpecificity = spec
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: no credential tagged for task %q", credstore.ErrNotFound, taskHint)
	}
	return best, nil
}

func tagged(e *credstore.Entry, task string) bool {
	for _, t := range e.TaskTags {
		if t == task {
			return true
		}
	}
	return false
}
