package core

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/credstore"
	"repro/internal/gsi"
	"repro/internal/policy"
	"repro/internal/protocol"
	"repro/internal/testpki"
)

// These tests inject failures at each protocol layer and check the server
// survives: a hostile network peer must not crash, hang, or corrupt the
// repository (it runs on "a tightly secured host", §5.1, but must also be
// robust to garbage from the network).

func TestServerSurvivesRawGarbage(t *testing.T) {
	srv, addr := startServer(t, nil)
	payloads := [][]byte{
		nil,
		[]byte("GET / HTTP/1.1\r\n\r\n"),
		{0x16, 0x03, 0x01, 0x00, 0x00},   // truncated TLS hello
		make([]byte, 4096),               // zeros
		[]byte("\x16\x03\x01\xff\xffAA"), // absurd length
	}
	for _, p := range payloads {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) > 0 {
			conn.Write(p)
		}
		conn.Close()
	}
	// The server still works afterwards.
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	if srv.Stats().Puts.Load() != 1 {
		t.Error("server unusable after garbage")
	}
}

func TestServerSurvivesTLSWithoutClientCert(t *testing.T) {
	srv, addr := startServer(t, nil)
	// A TLS client that presents no certificate completes the handshake
	// (RequireAnyClientCert only *requests*... it requires; handshake
	// fails server-side) — either way the server must stay up.
	conn, err := tls.Dial("tcp", addr, &tls.Config{InsecureSkipVerify: true})
	if err == nil {
		conn.Write([]byte("x"))
		conn.Close()
	}
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	_ = srv
}

func TestServerRejectsGarbageAfterHandshake(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	conn, err := gsi.Dial(context.Background(), "tcp", addr, alice, gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.WriteMessage([]byte("NOT A PROTOCOL MESSAGE")); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("no error response: %v", err)
	}
	resp, err := protocol.ParseResponse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Code != protocol.RespError {
		t.Errorf("code = %d", resp.Code)
	}
	if srv.Stats().Errors.Load() == 0 {
		t.Error("malformed request not counted")
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	conn, err := gsi.Dial(context.Background(), "tcp", addr, alice, gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-craft a frame header claiming 512 MiB.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 512<<20)
	if err := conn.WriteMessage(nil); err != nil { // prime: empty message
		t.Fatal(err)
	}
	// Server responds with a parse error for the empty message; the
	// important property is that it never tried to allocate 512 MiB.
	if _, err := conn.ReadMessage(); err != nil {
		t.Fatalf("server dropped connection on empty frame: %v", err)
	}
}

func TestServerHalfOpenConnectionTimesOut(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.RequestTimeout = 300 * time.Millisecond
	})
	alice := testpki.User(t, "core-alice")
	conn, err := gsi.Dial(context.Background(), "tcp", addr, alice, gsi.AuthOptions{
		Roots: testRoots(t), HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the server must drop the session at its deadline
	// rather than leak it.
	start := time.Now()
	_, err = conn.ReadMessage()
	if err == nil {
		t.Fatal("server kept a silent session open")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("session lingered %v", elapsed)
	}
}

func TestServerConcurrentMixedLoad(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	portal := testpki.Host(t, "portal.test")

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := newClient(t, portal, addr)
			// Interleave successful gets, failed auths, and infos.
			if _, err := cli.Get(context.Background(), GetOptions{
				Username: testUser, Passphrase: testPass,
			}); err != nil {
				errs <- err
			}
			if _, err := cli.Get(context.Background(), GetOptions{
				Username: testUser, Passphrase: "wrong wrong",
			}); err == nil {
				errs <- errWrongPassAccepted
			}
			if _, err := cli.Info(context.Background(), testUser, testPass); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.Stats().Gets.Load(); got != workers {
		t.Errorf("gets = %d, want %d", got, workers)
	}
	if got := srv.Stats().AuthFailures.Load(); got != workers {
		t.Errorf("auth failures = %d, want %d", got, workers)
	}
}

var errWrongPassAccepted = &ErrOTPRequired{Challenge: "sentinel: wrong pass accepted"}

func TestServerPurgeSweeper(t *testing.T) {
	fakeNow := time.Now()
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return fakeNow
	}
	store := credstore.NewMemStore()
	srv, err := NewServer(ServerConfig{
		Credential:           testpki.Host(t, "myproxy.test"),
		Roots:                testRoots(t),
		Store:                store,
		AcceptedCredentials:  policy.NewACL("*"),
		AuthorizedRetrievers: policy.NewACL("*"),
		PurgeInterval:        20 * time.Millisecond,
		Now:                  now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	e := &credstore.Entry{Username: "u", NotAfter: fakeNow.Add(time.Hour)}
	if err := e.SetPassphrase([]byte("pass")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(e); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fakeNow = fakeNow.Add(2 * time.Hour)
	mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := store.Get("u", ""); err == credstore.ErrNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweeper never purged the expired entry")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
