package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/otp"
	"repro/internal/testpki"
)

// When a user's OTP chain runs out, retrieval must fail closed until the
// chain is re-initialized (RFC 2289 semantics; paper §6.3).
func TestOTPChainExhaustion(t *testing.T) {
	registry := otp.NewRegistry()
	_, addr := startServer(t, func(cfg *ServerConfig) { cfg.OTP = registry })
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	secret := "exhaustion secret"
	// A chain with exactly two usable responses (seq 3 -> responses for 2, 1).
	if err := registry.Register(testUser, otp.MD5, secret, "exh1", 3); err != nil {
		t.Fatal(err)
	}
	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := portalCli.Get(ctx, GetOptions{
			Username: testUser, Passphrase: testPass, OTPSecret: secret,
		}); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	// Chain exhausted: no challenge can be issued, access fails closed.
	_, err := portalCli.Get(ctx, GetOptions{
		Username: testUser, Passphrase: testPass, OTPSecret: secret,
	})
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("exhausted chain: %v", err)
	}
	// Re-initialization restores access.
	if err := registry.Register(testUser, otp.MD5, secret, "exh2", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := portalCli.Get(ctx, GetOptions{
		Username: testUser, Passphrase: testPass, OTPSecret: secret,
	}); err != nil {
		t.Fatalf("after re-register: %v", err)
	}
}

// OTP also gates RETRIEVE (the §6.1 blob path).
func TestOTPGatesRetrieve(t *testing.T) {
	registry := otp.NewRegistry()
	_, addr := startServer(t, func(cfg *ServerConfig) { cfg.OTP = registry })
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	if err := cli.Store(context.Background(), StoreOptions{
		Username: testUser, Passphrase: testPass, CredName: "blob", Credential: alice,
	}); err != nil {
		t.Fatal(err)
	}
	secret := "retrieve otp secret"
	if err := registry.Register(testUser, otp.SHA1, secret, "ret1", 10); err != nil {
		t.Fatal(err)
	}
	// Without OTP: challenged.
	_, err := cli.Retrieve(context.Background(), RetrieveOptions{
		Username: testUser, Passphrase: testPass, CredName: "blob",
	})
	var otpErr *ErrOTPRequired
	if !errors.As(err, &otpErr) {
		t.Fatalf("expected challenge, got %v", err)
	}
	// With the secret: automatic.
	if _, err := cli.Retrieve(context.Background(), RetrieveOptions{
		Username: testUser, Passphrase: testPass, CredName: "blob", OTPSecret: secret,
	}); err != nil {
		t.Fatalf("retrieve with OTP: %v", err)
	}
}
