package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/credstore"
	"repro/internal/otp"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

// startServer launches a repository on a loopback port with permissive test
// ACLs; mutate customizes the config before start.
func startServer(t *testing.T, mutate func(*ServerConfig)) (*Server, string) {
	t.Helper()
	roots := testRoots(t)
	cfg := ServerConfig{
		Credential:           testpki.Host(t, "myproxy.test"),
		Roots:                roots,
		AcceptedCredentials:  policy.NewACL("/C=US/O=Test Grid/*"),
		AuthorizedRetrievers: policy.NewACL("/C=US/O=Test Grid/*"),
		KDFIterations:        64, // fast tests; production default is 64k
		DelegationKeyBits:    1024,
		RequestTimeout:       10 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ln, err := listenLoopback(t)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func testRoots(t *testing.T) *x509Pool {
	t.Helper()
	pool := newX509Pool()
	pool.AddCert(testpki.CA(t).Certificate())
	return pool
}

func newClient(t *testing.T, cred *pki.Credential, addr string) *Client {
	t.Helper()
	return &Client{
		Credential:     cred,
		Roots:          testRoots(t),
		Addr:           addr,
		ExpectedServer: "*/CN=myproxy.test",
		KeyBits:        1024,
		Timeout:        10 * time.Second,
	}
}

const (
	testUser = "jdoe"
	testPass = "correct horse battery staple"
)

func mustPut(t *testing.T, c *Client, opts PutOptions) {
	t.Helper()
	if opts.Username == "" {
		opts.Username = testUser
	}
	if opts.Passphrase == "" {
		opts.Passphrase = testPass
	}
	if err := c.Put(context.Background(), opts); err != nil {
		t.Fatalf("Put: %v", err)
	}
}

func TestPutGetEndToEnd(t *testing.T) {
	// Experiment E1+E2: the paper's Figures 1 and 2 end to end.
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	userCli := newClient(t, alice, addr)
	mustPut(t, userCli, PutOptions{Lifetime: 24 * time.Hour, MaxDelegation: 4 * time.Hour})

	// The portal, with its own credential, retrieves a delegation.
	portal := testpki.Host(t, "portal.test")
	portalCli := newClient(t, portal, addr)
	cred, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: 2 * time.Hour,
	})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// The retrieved proxy authenticates as alice, two delegation hops deep
	// (user -> repository -> portal).
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: testRoots(t)})
	if err != nil {
		t.Fatalf("verify retrieved chain: %v", err)
	}
	if res.IdentityString() != alice.Subject() {
		t.Errorf("identity = %q, want %q", res.IdentityString(), alice.Subject())
	}
	if res.Depth != 2 {
		t.Errorf("depth = %d, want 2", res.Depth)
	}
	if left := cred.TimeLeft(); left > 2*time.Hour+time.Minute {
		t.Errorf("delegated lifetime %v exceeds request", left)
	}
	if srv.Stats().Puts.Load() != 1 || srv.Stats().Gets.Load() != 1 {
		t.Errorf("stats = %v", srv.Stats().Snapshot())
	}
}

func TestGetWrongPassphrase(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)
	_, err := portalCli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: "wrong wrong"})
	if err == nil {
		t.Fatal("wrong pass phrase accepted")
	}
	if !strings.Contains(err.Error(), "bad pass phrase") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGetUnknownUser(t *testing.T) {
	_, addr := startServer(t, nil)
	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)
	_, err := portalCli.Get(context.Background(), GetOptions{Username: "nobody", Passphrase: testPass})
	if err == nil || !strings.Contains(err.Error(), "no credentials") {
		t.Fatalf("unknown user: %v", err)
	}
}

func TestACLsEnforced(t *testing.T) {
	// Experiment E6: both repository ACLs (paper §5.1).
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.AcceptedCredentials = policy.NewACL("*/CN=core-alice")
		cfg.AuthorizedRetrievers = policy.NewACL("*/CN=portal.test")
	})
	alice := testpki.User(t, "core-alice")
	mallory := testpki.User(t, "core-mallory")
	mustPut(t, newClient(t, alice, addr), PutOptions{})

	// Unauthorized writer.
	err := newClient(t, mallory, addr).Put(context.Background(), PutOptions{
		Username: "mallory", Passphrase: testPass,
	})
	if err == nil || !strings.Contains(err.Error(), "authorization failed") {
		t.Errorf("unauthorized PUT: %v", err)
	}
	// Unauthorized retriever with the CORRECT pass phrase (the paper's
	// key point: ACLs protect even against stolen authentication data).
	_, err = newClient(t, mallory, addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	})
	if err == nil || !strings.Contains(err.Error(), "authorization failed") {
		t.Errorf("unauthorized GET with stolen pass phrase: %v", err)
	}
	// Authorized retriever succeeds.
	if _, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	}); err != nil {
		t.Errorf("authorized GET failed: %v", err)
	}
}

func TestWeakPassphraseRejected(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	err := newClient(t, alice, addr).Put(context.Background(), PutOptions{
		Username: testUser, Passphrase: "passwd",
	})
	if err == nil || !strings.Contains(err.Error(), "pass phrase rejected") {
		t.Fatalf("weak pass phrase: %v", err)
	}
}

func TestPerCredentialRetrieverRestriction(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Retrievers: "*/CN=portal.test"})
	// A different (server-authorized) retriever is still refused by the
	// per-credential restriction.
	other := testpki.Host(t, "other-portal.test")
	_, err := newClient(t, other, addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	})
	if err == nil || !strings.Contains(err.Error(), "authorization failed") {
		t.Errorf("per-credential restriction not enforced: %v", err)
	}
	if _, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	}); err != nil {
		t.Errorf("allowed retriever failed: %v", err)
	}
}

func TestOwnerMaxDelegationClampsLifetime(t *testing.T) {
	// Experiment E8: the §4.1 retrieval restriction.
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{MaxDelegation: 30 * time.Minute})
	cred, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: 8 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if left := cred.TimeLeft(); left > 31*time.Minute {
		t.Errorf("owner restriction ignored: lifetime %v", left)
	}
}

func TestServerLifetimePolicyClampsDelegation(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.Lifetimes = policy.LifetimePolicy{MaxDelegated: time.Hour}
	})
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	cred, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if left := cred.TimeLeft(); left > time.Hour+time.Minute {
		t.Errorf("server policy ignored: lifetime %v", left)
	}
}

func TestPutLifetimeExceedingPolicyRejected(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.Lifetimes = policy.LifetimePolicy{MaxStored: time.Hour}
	})
	alice := testpki.User(t, "core-alice")
	err := newClient(t, alice, addr).Put(context.Background(), PutOptions{
		Username: testUser, Passphrase: testPass, Lifetime: 24 * time.Hour,
	})
	if err == nil || !strings.Contains(err.Error(), "exceeds server maximum") {
		t.Fatalf("over-long PUT: %v", err)
	}
}

func TestInfoListsCredentials(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	mustPut(t, cli, PutOptions{Description: "default cred", MaxDelegation: time.Hour})
	mustPut(t, cli, PutOptions{CredName: "cluster-a", Description: "for cluster A", TaskTags: []string{"hpc"}})

	infos, err := cli.Info(context.Background(), testUser, testPass)
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("Info returned %d entries", len(infos))
	}
	if infos[0].Name != "" || infos[0].Description != "default cred" || infos[0].MaxDelegation != time.Hour {
		t.Errorf("default info = %+v", infos[0])
	}
	if infos[1].Name != "cluster-a" || len(infos[1].TaskTags) != 1 {
		t.Errorf("named info = %+v", infos[1])
	}
	if infos[0].Owner != alice.Subject() {
		t.Errorf("owner = %q", infos[0].Owner)
	}
	if infos[0].EndTime.Before(time.Now()) {
		t.Error("EndTime in the past")
	}
	// Wrong pass phrase: nothing listed.
	if _, err := cli.Info(context.Background(), testUser, "wrong wrong"); err == nil {
		t.Error("Info with wrong pass phrase succeeded")
	}
}

func TestDestroy(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	mustPut(t, cli, PutOptions{})

	// Non-owner cannot destroy even with the pass phrase.
	mallory := testpki.User(t, "core-mallory")
	err := newClient(t, mallory, addr).Destroy(context.Background(), testUser, testPass, "")
	if err == nil {
		t.Error("non-owner destroyed a credential")
	}
	// Owner with wrong pass phrase cannot destroy.
	if err := cli.Destroy(context.Background(), testUser, "wrong wrong", ""); err == nil {
		t.Error("destroy with wrong pass phrase")
	}
	// Owner destroys (paper §4.1: "the user can also, at any point, use
	// the myproxy-destroy client program").
	if err := cli.Destroy(context.Background(), testUser, testPass, ""); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	_, err = newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	})
	if err == nil {
		t.Fatal("credential retrievable after destroy")
	}
}

func TestChangePassphrase(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	mustPut(t, cli, PutOptions{})
	newPass := "a brand new pass phrase"
	if err := cli.ChangePassphrase(context.Background(), testUser, testPass, newPass, ""); err != nil {
		t.Fatalf("ChangePassphrase: %v", err)
	}
	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)
	if _, err := portalCli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass}); err == nil {
		t.Error("old pass phrase still valid")
	}
	if _, err := portalCli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: newPass}); err != nil {
		t.Errorf("new pass phrase rejected: %v", err)
	}
	// Weak new pass phrase rejected.
	if err := cli.ChangePassphrase(context.Background(), testUser, newPass, "123", ""); err == nil {
		t.Error("weak new pass phrase accepted")
	}
}

func TestStoreRetrieve(t *testing.T) {
	// Paper §6.1: long-term credential management.
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	if err := cli.Store(context.Background(), StoreOptions{
		Username: testUser, Passphrase: testPass, CredName: "longterm",
		Credential: alice, Description: "long-term identity",
	}); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// The repository's copy is sealed: no plaintext key material at rest.
	entry, err := srv.Store().Get(testUser, "longterm")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(entry.SealedKey), "RSA PRIVATE KEY") {
		t.Fatal("repository stored a plaintext key")
	}
	if entry.Kind != credstore.KindStored {
		t.Errorf("kind = %v", entry.Kind)
	}
	back, err := cli.Retrieve(context.Background(), RetrieveOptions{
		Username: testUser, Passphrase: testPass, CredName: "longterm",
	})
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if !pki.PublicKeysEqual(back.PrivateKey.Public(), alice.PrivateKey.Public()) {
		t.Error("retrieved key mismatch")
	}
	// Wrong pass phrase: server refuses before returning the blob.
	if _, err := cli.Retrieve(context.Background(), RetrieveOptions{
		Username: testUser, Passphrase: "wrong wrong", CredName: "longterm",
	}); err == nil {
		t.Error("retrieve with wrong pass phrase")
	}
	// A delegated credential is not retrievable as a blob.
	mustPut(t, cli, PutOptions{})
	if _, err := cli.Retrieve(context.Background(), RetrieveOptions{
		Username: testUser, Passphrase: testPass,
	}); err == nil || !strings.Contains(err.Error(), "not retrievable") {
		t.Errorf("delegated credential retrieved as blob: %v", err)
	}
}

func TestOTPFlow(t *testing.T) {
	// Experiment E9 (paper §5.1/§6.3): replay of captured authentication
	// data fails when OTP is enabled.
	registry := otp.NewRegistry()
	_, addr := startServer(t, func(cfg *ServerConfig) { cfg.OTP = registry })
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	mustPut(t, cli, PutOptions{})

	otpSecret := "otp secret pass phrase"
	if err := registry.Register(testUser, otp.MD5, otpSecret, "seed42", 100); err != nil {
		t.Fatal(err)
	}
	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)

	// Without an OTP: challenge.
	_, err := portalCli.Get(context.Background(), GetOptions{Username: testUser, Passphrase: testPass})
	var otpErr *ErrOTPRequired
	if !errors.As(err, &otpErr) {
		t.Fatalf("expected OTP challenge, got %v", err)
	}
	// Answer manually.
	resp, err := otp.Respond(otpErr.Challenge, otpSecret)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, OTP: resp,
	}); err != nil {
		t.Fatalf("Get with OTP: %v", err)
	}
	// REPLAY the captured (pass phrase, OTP) pair: must fail.
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, OTP: resp,
	}); err == nil {
		t.Fatal("replayed OTP accepted — replay protection broken")
	}
	// Automatic answering via OTPSecret.
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, OTPSecret: otpSecret,
	}); err != nil {
		t.Fatalf("Get with OTPSecret: %v", err)
	}
}

func TestWalletSelection(t *testing.T) {
	// Experiment E10 (paper §6.2): task-based credential selection.
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	mustPut(t, cli, PutOptions{CredName: "compute", TaskTags: []string{"job-submit"}})
	mustPut(t, cli, PutOptions{CredName: "data", TaskTags: []string{"file-read", "file-write"}})

	portalCli := newClient(t, testpki.Host(t, "portal.test"), addr)
	// Task hint selects the tagged credential.
	cred, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, TaskHint: "file-write",
	})
	if err != nil {
		t.Fatalf("Get by task: %v", err)
	}
	if cred == nil {
		t.Fatal("no credential")
	}
	// Unknown task: refused.
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, TaskHint: "launch-rockets",
	}); err == nil {
		t.Error("unknown task hint satisfied")
	}
	// No name, no hint, two credentials, none default: ambiguous.
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	}); err == nil {
		t.Error("ambiguous selection succeeded")
	}
	// Explicit name works.
	if _, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, CredName: "compute",
	}); err != nil {
		t.Errorf("Get by name: %v", err)
	}
}

func TestExpiredStoredCredentialRefused(t *testing.T) {
	fakeNow := time.Now()
	srv, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.Now = func() time.Time { return fakeNow }
	})
	_ = srv
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: time.Hour})
	// Advance the server's clock past expiry.
	fakeNow = fakeNow.Add(2 * time.Hour)
	_, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	})
	if err == nil || !strings.Contains(err.Error(), "expired") {
		t.Fatalf("expired credential: %v", err)
	}
}

func TestPutOverwriteByNonOwnerRejected(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	bob := testpki.User(t, "core-bob")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	err := newClient(t, bob, addr).Put(context.Background(), PutOptions{
		Username: testUser, Passphrase: "another pass phrase",
	})
	if err == nil || !strings.Contains(err.Error(), "owned by another identity") {
		t.Fatalf("overwrite by non-owner: %v", err)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("config without credential accepted")
	}
	if _, err := NewServer(ServerConfig{Credential: testpki.Host(t, "myproxy.test")}); err == nil {
		t.Error("config without roots accepted")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t, nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
