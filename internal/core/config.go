// Package core implements the MyProxy online credential repository — the
// paper's primary contribution (§4): a repository server that accepts
// delegated proxy credentials (myproxy-init, Fig. 1), delegates short-lived
// proxies back to authorized clients (myproxy-get-delegation, Fig. 2), and
// the client library the CLI tools and the Grid portal build on (Fig. 3).
package core

import (
	"crypto/x509"
	"log"
	"time"

	"repro/internal/credstore"
	"repro/internal/otp"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/proxy"
)

// ServerConfig configures a repository server.
type ServerConfig struct {
	// Credential is the repository's host credential; clients mutually
	// authenticate the repository with it (paper §5.1).
	Credential *pki.Credential
	// Roots are the CA certificates the repository trusts for client
	// authentication.
	Roots *x509.CertPool
	// Store is the credential store; nil selects an in-memory store.
	Store credstore.Store

	// AcceptedCredentials lists DN patterns allowed to delegate or store
	// credentials (paper §5.1, "typically users"). Empty denies all.
	AcceptedCredentials *policy.ACL
	// AuthorizedRetrievers lists DN patterns allowed to request
	// delegations or retrieve credentials (paper §5.1, "typically
	// portals"). Empty denies all.
	AuthorizedRetrievers *policy.ACL
	// AuthorizedRenewers lists DN patterns allowed to renew renewable
	// credentials without a pass phrase (paper §6.6); renewal additionally
	// requires that the requester authenticate as the stored credential's
	// own identity. Empty denies all renewals.
	AuthorizedRenewers *policy.ACL

	// Passphrase is the pass-phrase quality policy applied at deposit time.
	Passphrase policy.PassphrasePolicy
	// Lifetimes bounds stored and delegated credential lifetimes.
	Lifetimes policy.LifetimePolicy

	// DelegationProxyType selects the proxy style for outgoing delegations
	// (GET); the zero value selects proxy.RFC3820. Incoming delegations
	// (PUT) are driven by the client.
	DelegationProxyType proxy.Type

	// KDFIterations tunes the sealing KDF; 0 selects
	// pki.DefaultKDFIterations. Experiment E5 sweeps this.
	KDFIterations int
	// MaxChainDepth bounds client proxy chains (0 = proxy.DefaultMaxDepth).
	MaxChainDepth int
	// RequestTimeout bounds one client session (0 = 30s).
	RequestTimeout time.Duration
	// MessageTimeout bounds each protocol message inside a session (the
	// slowloris guard): a client that stops making message-level progress
	// for this long is evicted, freeing its slot for live sessions. 0
	// selects RequestTimeout (one budget for the whole session).
	MessageTimeout time.Duration
	// MaxConcurrent caps simultaneously served connections; further
	// accepts wait for a free slot (backpressure) instead of piling up
	// goroutines. 0 = unlimited.
	MaxConcurrent int
	// DrainTimeout bounds Close's graceful drain: in-flight sessions get
	// this long to finish before being force-closed. 0 waits indefinitely.
	DrainTimeout time.Duration
	// SessionTimeout caps a multiplexed session's total lifetime (the
	// SESSION command): the connection is cut when it expires regardless of
	// stream progress. 0 selects 5 minutes.
	SessionTimeout time.Duration
	// DisableSessions refuses SESSION requests, forcing clients down the
	// one-exchange-per-connection path (legacy behavior; also how the
	// client's transparent downgrade is exercised in tests).
	DisableSessions bool
	// StatsFile, when non-empty, is where the server persists an
	// operation-counter snapshot (JSON) on shutdown and every
	// StatsFlushInterval, for offline inspection by myproxy-admin stats.
	StatsFile string
	// StatsFlushInterval is the periodic stats flush period when StatsFile
	// is set (0 = 30s).
	StatsFlushInterval time.Duration
	// PurgeInterval, when positive, sweeps expired credentials from the
	// store on this period (see credstore.PurgeExpired).
	PurgeInterval time.Duration
	// DelegationKeyAlgorithm selects the key algorithm the server generates
	// for imported (PUT) credentials when the client does not request one
	// (KEY_ALG); the zero value is RSA, the paper-fidelity default.
	DelegationKeyAlgorithm pki.KeyAlgorithm
	// DelegationKeyBits is the RSA key size the server generates for
	// imported (PUT) credentials; 0 selects pki.DefaultKeyBits. Ignored for
	// non-RSA algorithms.
	DelegationKeyBits int
	// KeySource, when non-nil, supplies pre-generated key pairs for
	// imported (PUT) credentials — typically a keypool.Pool sized by the
	// -keypool flag — taking RSA generation off the deposit path. nil
	// generates synchronously.
	KeySource proxy.KeySource
	// VerifyCache, when non-nil, memoizes client chain verifications so
	// repeat connections from the same portal skip the RSA chain walk;
	// nil lets NewServer build a default-sized cache. Revocation is
	// re-checked on every cache hit, and the cache is invalidated when
	// the revocation hook is replaced (Server.SetRevoked).
	VerifyCache *proxy.VerifyCache

	// OTP, when non-nil, holds one-time-password state per username
	// (paper §6.3). Users registered in it must answer the current OTP
	// challenge before GET/RETRIEVE, defeating pass-phrase replay (§5.1).
	OTP *otp.Registry

	// IsRevoked is an optional revocation hook for client chains.
	IsRevoked func(*x509.Certificate) bool

	// Logger receives audit lines; nil disables logging.
	Logger *log.Logger
	// Now is the clock (tests); nil selects time.Now.
	Now func() time.Time
}

func (c *ServerConfig) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *ServerConfig) logf(format string, args ...interface{}) {
	if c.Logger != nil {
		c.Logger.Printf(format, args...)
	}
}
