package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/credstore"
	"repro/internal/gsi"
	"repro/internal/protocol"
	"repro/internal/proxy"
)

// serveSession runs one request/response exchange (plus any delegation the
// command implies) on an authenticated channel.
func (s *Server) serveSession(conn *gsi.Conn) error {
	reqData, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("read request: %w", err)
	}
	req, err := protocol.ParseRequest(reqData)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("malformed request: %v", err))
		return err
	}
	peer := conn.PeerIdentity()
	s.cfg.logf("%s %s username=%q cred=%q from %v", peer, req.Command, req.Username, req.CredName, conn.RemoteAddr())

	switch req.Command {
	case protocol.CmdPut:
		return s.handlePut(conn, req)
	case protocol.CmdGet:
		return s.handleGet(conn, req)
	case protocol.CmdInfo:
		return s.handleInfo(conn, req)
	case protocol.CmdDestroy:
		return s.handleDestroy(conn, req)
	case protocol.CmdChangePassphrase:
		return s.handleChangePassphrase(conn, req)
	case protocol.CmdStore:
		return s.handleStore(conn, req)
	case protocol.CmdRetrieve:
		return s.handleRetrieve(conn, req)
	default:
		s.respond(conn, protocol.ErrorResponse("unsupported command %s", req.Command))
		return fmt.Errorf("unsupported command %d", int(req.Command))
	}
}

func (s *Server) respond(conn *gsi.Conn, resp *protocol.Response) error {
	return conn.WriteMessage(protocol.MarshalResponse(resp))
}

// failf logs, counts, and sends an error response. The client-visible text
// is deliberately generic for authentication failures to avoid oracle
// behavior; detail goes to the audit log.
func (s *Server) failf(conn *gsi.Conn, public string, format string, args ...interface{}) error {
	s.cfg.logf("DENIED %s: %s", conn.PeerIdentity(), fmt.Sprintf(format, args...))
	s.stats.AuthFailures.Add(1)
	return s.respond(conn, protocol.ErrorResponse("%s", public))
}

const (
	deniedMsg    = "authorization failed"
	notFoundMsg  = "no credentials found for user"
	badPhraseMsg = "bad pass phrase or username"
)

// --- PUT: myproxy-init (paper Fig. 1) ---

func (s *Server) handlePut(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AcceptedCredentials.Allows(peer) {
		return s.failf(conn, deniedMsg, "PUT by %s not in accepted_credentials", peer)
	}
	// Renewable credentials (paper §6.6) are deposited without a pass
	// phrase so authorized renewers can refresh long-running jobs; they
	// are sealed under the empty pass phrase (the myproxy-init -n
	// trade-off). Everything else must pass the quality policy.
	if req.Renewable && req.Passphrase != "" {
		return s.respond(conn, protocol.ErrorResponse("renewable credentials take no pass phrase"))
	}
	if !req.Renewable {
		if err := s.cfg.Passphrase.Check(req.Passphrase); err != nil {
			// Pass-phrase policy violations are safe (and useful) to surface.
			s.cfg.logf("DENIED %s: weak pass phrase: %v", peer, err)
			return s.respond(conn, protocol.ErrorResponse("pass phrase rejected: %v", err))
		}
	}
	lifetime := s.cfg.Lifetimes.ClampStored(req.Lifetime)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	// Import the credential: the client is the exporter, so the private
	// key is generated here — drawn from the background pool when one is
	// configured — and never crosses the wire.
	cred, err := gsi.RequestDelegationFrom(conn, s.cfg.KeySource, s.cfg.DelegationKeyBits, s.cfg.Roots)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("PUT delegation from %s: %w", peer, err)
	}
	// The delegated chain must carry the authenticated peer's identity:
	// clients may only deposit their own credentials. The chain's leaf is
	// freshly minted, so this verification is never cache-served.
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{
		Roots: s.cfg.Roots, MaxDepth: s.cfg.MaxChainDepth, IsRevoked: s.revocationHook(),
	})
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("delegated chain invalid: %v", err))
		return err
	}
	if res.IdentityString() != peer {
		s.respond(conn, protocol.ErrorResponse("delegated identity does not match authenticated identity"))
		return fmt.Errorf("PUT identity mismatch: chain %s, peer %s", res.IdentityString(), peer)
	}
	// Enforce the stored-lifetime policy: the client signs the proxy, so
	// the server verifies rather than dictates (slack for clock skew).
	if remaining := cred.TimeLeftAt(s.cfg.now()); remaining > lifetime+10*time.Minute {
		s.respond(conn, protocol.ErrorResponse(
			"delegated lifetime %v exceeds server maximum %v", remaining.Round(time.Minute), lifetime))
		return fmt.Errorf("PUT lifetime %v exceeds policy %v", remaining, lifetime)
	}

	entry := &credstore.Entry{
		Username:      req.Username,
		Name:          req.CredName,
		Owner:         peer,
		Description:   req.Description,
		Retrievers:    req.Retrievers,
		MaxDelegation: req.MaxDelegation,
		TaskTags:      req.TaskTags,
		Renewable:     req.Renewable,
		CreatedAt:     s.cfg.now(),
	}
	// Replacing an existing credential requires owning it.
	if prev, err := s.store.Get(req.Username, req.CredName); err == nil && prev.Owner != peer {
		s.respond(conn, protocol.ErrorResponse("credential exists and is owned by another identity"))
		return fmt.Errorf("PUT overwrite of %s/%s by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := credstore.SealDelegated(entry, cred, []byte(req.Passphrase), s.cfg.KDFIterations); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not seal credential"))
		return err
	}
	// Drop the plaintext key immediately (paper §5.1): the entry now holds
	// only the sealed form.
	cred.PrivateKey = nil
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not store credential"))
		return err
	}
	s.stats.Puts.Add(1)
	s.cfg.logf("STORED %s/%s for %s until %v", req.Username, req.CredName, peer, entry.NotAfter)
	return s.respond(conn, protocol.OKResponse())
}

// --- GET: myproxy-get-delegation (paper Fig. 2) ---

func (s *Server) handleGet(conn *gsi.Conn, req *protocol.Request) error {
	if req.Renewal {
		return s.handleRenewal(conn, req)
	}
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "GET by %s not in authorized_retrievers", peer)
	}
	// One-time-password gate (paper §6.3): if the user is enrolled, a
	// valid, fresh OTP response is required in addition to the pass phrase
	// (the pass phrase still unseals the stored key; the OTP defeats
	// replay of a captured exchange, §5.1).
	if s.cfg.OTP != nil && s.cfg.OTP.Enabled(req.Username) {
		if req.OTP == "" {
			challenge, ok := s.cfg.OTP.Challenge(req.Username)
			if !ok {
				return s.failf(conn, "one-time password chain exhausted", "OTP exhausted for %q", req.Username)
			}
			s.stats.AuthFailures.Add(1)
			return s.respond(conn, &protocol.Response{
				Code: protocol.RespAuthRequired, Challenge: challenge,
			})
		}
		if err := s.cfg.OTP.Verify(req.Username, req.OTP); err != nil {
			return s.failf(conn, badPhraseMsg, "OTP verify for %q: %v", req.Username, err)
		}
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "GET %s/%s: %v", req.Username, req.CredName, err)
	}
	// Per-credential retrieval restriction composes with the server ACL.
	if entry.Retrievers != "" && !policyMatch(entry.Retrievers, peer) {
		return s.failf(conn, deniedMsg, "GET %s/%s: %s not in credential retriever list", req.Username, entry.Name, peer)
	}
	if entry.Expired(s.cfg.now()) {
		return s.failf(conn, "stored credential has expired", "GET %s/%s expired at %v", req.Username, entry.Name, entry.NotAfter)
	}
	issuer, err := credstore.UnsealDelegated(entry, []byte(req.Passphrase))
	if err != nil {
		if errors.Is(err, credstore.ErrBadPassphrase) {
			return s.failf(conn, badPhraseMsg, "GET %s/%s: bad pass phrase", req.Username, entry.Name)
		}
		s.respond(conn, protocol.ErrorResponse("could not open stored credential"))
		return err
	}
	lifetime := s.cfg.Lifetimes.ClampDelegatedWithRestriction(req.Lifetime, entry.MaxDelegation)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	// Delegate to the client: the repository is the exporter here; the
	// client generates the key (paper Fig. 2).
	if _, err := gsi.Delegate(conn, issuer, proxy.Options{
		Type:     s.cfg.DelegationProxyType,
		Lifetime: lifetime,
	}); err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("GET delegation to %s: %w", peer, err)
	}
	// Drop the unsealed key (paper §5.1: plaintext exists only while in
	// active use).
	issuer.PrivateKey = nil
	s.stats.Gets.Add(1)
	s.cfg.logf("DELEGATED %s/%s to %s for %v", req.Username, entry.Name, peer, lifetime)
	return s.respond(conn, protocol.OKResponse())
}

// handleRenewal is the §6.6 path: a long-running job, authenticating with
// its current (soon-to-expire) proxy of the user's identity, obtains a
// fresh delegation without a pass phrase. Authorization is the renewer ACL
// plus an exact identity match with the stored credential's owner.
func (s *Server) handleRenewal(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRenewers.Allows(peer) {
		return s.failf(conn, deniedMsg, "RENEWAL by %s not in authorized_renewers", peer)
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "RENEWAL %s/%s: %v", req.Username, req.CredName, err)
	}
	if !entry.Renewable {
		return s.failf(conn, deniedMsg, "RENEWAL %s/%s: credential not renewable", req.Username, entry.Name)
	}
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "RENEWAL %s/%s: requester %s is not the credential identity %s",
			req.Username, entry.Name, peer, entry.Owner)
	}
	if entry.Expired(s.cfg.now()) {
		return s.failf(conn, "stored credential has expired", "RENEWAL %s/%s expired at %v", req.Username, entry.Name, entry.NotAfter)
	}
	issuer, err := credstore.UnsealDelegated(entry, nil)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("could not open stored credential"))
		return err
	}
	lifetime := s.cfg.Lifetimes.ClampDelegatedWithRestriction(req.Lifetime, entry.MaxDelegation)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	if _, err := gsi.Delegate(conn, issuer, proxy.Options{
		Type:     s.cfg.DelegationProxyType,
		Lifetime: lifetime,
	}); err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("RENEWAL delegation to %s: %w", peer, err)
	}
	issuer.PrivateKey = nil
	s.stats.Gets.Add(1)
	s.cfg.logf("RENEWED %s/%s for %s for %v", req.Username, entry.Name, peer, lifetime)
	return s.respond(conn, protocol.OKResponse())
}

// --- INFO: myproxy-info ---

func (s *Server) handleInfo(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	// Both depositors and retrievers may inspect; authentication is the
	// per-entry pass phrase.
	if !s.cfg.AcceptedCredentials.Allows(peer) && !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "INFO by %s not authorized", peer)
	}
	entries, err := s.store.List(req.Username)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	resp := &protocol.Response{Code: protocol.RespOK}
	for _, e := range entries {
		if e.CheckPassphrase([]byte(req.Passphrase)) != nil {
			continue // authenticate per entry; skip silently
		}
		resp.Infos = append(resp.Infos, protocol.CredInfo{
			Name:          e.Name,
			Owner:         e.Owner,
			Description:   e.Description,
			StartTime:     e.NotBefore.UTC(),
			EndTime:       e.NotAfter.UTC(),
			MaxDelegation: e.MaxDelegation,
			Retrievers:    e.Retrievers,
			TaskTags:      e.TaskTags,
		})
	}
	if len(resp.Infos) == 0 {
		return s.failf(conn, notFoundMsg, "INFO %s: no entries matched pass phrase", req.Username)
	}
	s.stats.Infos.Add(1)
	return s.respond(conn, resp)
}

// --- DESTROY: myproxy-destroy (paper §4.1) ---

func (s *Server) handleDestroy(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	entry, err := s.store.Get(req.Username, req.CredName)
	if err != nil {
		return s.failf(conn, notFoundMsg, "DESTROY %s/%s: %v", req.Username, req.CredName, err)
	}
	// Only the owner, with the pass phrase, may destroy.
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "DESTROY %s/%s by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := entry.CheckPassphrase([]byte(req.Passphrase)); err != nil {
		return s.failf(conn, badPhraseMsg, "DESTROY %s/%s: bad pass phrase", req.Username, req.CredName)
	}
	if err := s.store.Delete(req.Username, req.CredName); err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	s.stats.Destroys.Add(1)
	s.cfg.logf("DESTROYED %s/%s by %s", req.Username, req.CredName, peer)
	return s.respond(conn, protocol.OKResponse())
}

// --- CHANGE_PASSPHRASE: myproxy-change-passphrase ---

func (s *Server) handleChangePassphrase(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	entry, err := s.store.Get(req.Username, req.CredName)
	if err != nil {
		return s.failf(conn, notFoundMsg, "CHANGE_PASSPHRASE %s/%s: %v", req.Username, req.CredName, err)
	}
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "CHANGE_PASSPHRASE %s/%s by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := s.cfg.Passphrase.Check(req.NewPassphrase); err != nil {
		return s.respond(conn, protocol.ErrorResponse("new pass phrase rejected: %v", err))
	}
	switch entry.Kind {
	case credstore.KindDelegated:
		if err := credstore.Reseal(entry, []byte(req.Passphrase), []byte(req.NewPassphrase), s.cfg.KDFIterations); err != nil {
			if errors.Is(err, credstore.ErrBadPassphrase) {
				return s.failf(conn, badPhraseMsg, "CHANGE_PASSPHRASE %s/%s: bad pass phrase", req.Username, req.CredName)
			}
			s.respond(conn, protocol.ErrorResponse("reseal failed"))
			return err
		}
	case credstore.KindStored:
		// The blob is sealed client-side; the server cannot re-encrypt it
		// (by design — it never sees the plaintext).
		return s.respond(conn, protocol.ErrorResponse(
			"stored credentials are sealed client-side; re-upload with myproxy-store to change the pass phrase"))
	}
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	s.stats.PassphraseChange.Add(1)
	s.cfg.logf("RESEALED %s/%s by %s", req.Username, req.CredName, peer)
	return s.respond(conn, protocol.OKResponse())
}

// --- STORE: myproxy-store (paper §6.1) ---

func (s *Server) handleStore(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AcceptedCredentials.Allows(peer) {
		return s.failf(conn, deniedMsg, "STORE by %s not in accepted_credentials", peer)
	}
	if err := s.cfg.Passphrase.Check(req.Passphrase); err != nil {
		return s.respond(conn, protocol.ErrorResponse("pass phrase rejected: %v", err))
	}
	if prev, err := s.store.Get(req.Username, req.CredName); err == nil && prev.Owner != peer {
		return s.failf(conn, deniedMsg, "STORE overwrite of %s/%s by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	blob, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("STORE blob from %s: %w", peer, err)
	}
	if len(blob) == 0 {
		s.respond(conn, protocol.ErrorResponse("empty credential blob"))
		return errors.New("empty STORE blob")
	}
	entry := &credstore.Entry{
		Username:      req.Username,
		Name:          req.CredName,
		Owner:         peer,
		Kind:          credstore.KindStored,
		SealedKey:     blob,
		Description:   req.Description,
		Retrievers:    req.Retrievers,
		MaxDelegation: req.MaxDelegation,
		TaskTags:      req.TaskTags,
		CreatedAt:     s.cfg.now(),
	}
	if err := entry.SetPassphrase([]byte(req.Passphrase)); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not record pass phrase verifier"))
		return err
	}
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not store credential"))
		return err
	}
	s.stats.Stores.Add(1)
	s.cfg.logf("STORED(blob) %s/%s for %s (%d bytes)", req.Username, req.CredName, peer, len(blob))
	return s.respond(conn, protocol.OKResponse())
}

// --- RETRIEVE: myproxy-retrieve (paper §6.1) ---

func (s *Server) handleRetrieve(conn *gsi.Conn, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "RETRIEVE by %s not in authorized_retrievers", peer)
	}
	if s.cfg.OTP != nil && s.cfg.OTP.Enabled(req.Username) {
		if req.OTP == "" {
			challenge, ok := s.cfg.OTP.Challenge(req.Username)
			if !ok {
				return s.failf(conn, "one-time password chain exhausted", "OTP exhausted for %q", req.Username)
			}
			s.stats.AuthFailures.Add(1)
			return s.respond(conn, &protocol.Response{Code: protocol.RespAuthRequired, Challenge: challenge})
		}
		if err := s.cfg.OTP.Verify(req.Username, req.OTP); err != nil {
			return s.failf(conn, badPhraseMsg, "OTP verify for %q: %v", req.Username, err)
		}
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "RETRIEVE %s/%s: %v", req.Username, req.CredName, err)
	}
	if entry.Kind != credstore.KindStored {
		return s.failf(conn, "credential is not retrievable; use get-delegation",
			"RETRIEVE %s/%s is %s", req.Username, entry.Name, entry.Kind)
	}
	if entry.Retrievers != "" && !policyMatch(entry.Retrievers, peer) {
		return s.failf(conn, deniedMsg, "RETRIEVE %s/%s: %s not in credential retriever list", req.Username, entry.Name, peer)
	}
	if err := entry.CheckPassphrase([]byte(req.Passphrase)); err != nil {
		return s.failf(conn, badPhraseMsg, "RETRIEVE %s/%s: bad pass phrase", req.Username, entry.Name)
	}
	s.stats.Retrieves.Add(1)
	s.cfg.logf("RETRIEVED %s/%s by %s", req.Username, entry.Name, peer)
	return s.respond(conn, &protocol.Response{Code: protocol.RespOK, Blob: entry.SealedKey})
}
