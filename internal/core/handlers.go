package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/credstore"
	"repro/internal/gsi"
	"repro/internal/pki"
	"repro/internal/protocol"
	"repro/internal/proxy"
)

// serveSession runs one client conversation on an authenticated channel:
// either a single request/response exchange (plus any delegation the
// command implies), or — on a SESSION request — a multiplexed session
// pipelining many such exchanges over the one connection.
//myproxy:hotpath
func (s *Server) serveSession(conn *gsi.Conn) error {
	reqData, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("read request: %w", err)
	}
	req, err := protocol.ParseRequest(reqData)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("malformed request: %v", err))
		return err
	}
	if req.Command == protocol.CmdSession {
		return s.serveMultiplexed(conn)
	}
	return s.dispatch(conn, req, nil)
}

// dispatch routes one parsed request to its handler. The channel may be a
// whole connection or one stream of a multiplexed session; the handlers
// cannot tell the difference beyond the session's unseal cache (nil for a
// single-exchange connection).
//myproxy:hotpath
func (s *Server) dispatch(conn gsi.Channel, req *protocol.Request, sc *unsealCache) error {
	peer := conn.PeerIdentity()
	s.cfg.logf("%s %s username=%q cred=%q from %v", peer, req.Command, req.Username, req.CredName, conn.RemoteAddr())

	switch req.Command {
	case protocol.CmdPut:
		return s.handlePut(conn, req)
	case protocol.CmdGet:
		return s.handleGet(conn, req, sc)
	case protocol.CmdInfo:
		return s.handleInfo(conn, req)
	case protocol.CmdDestroy:
		return s.handleDestroy(conn, req)
	case protocol.CmdChangePassphrase:
		return s.handleChangePassphrase(conn, req)
	case protocol.CmdStore:
		return s.handleStore(conn, req)
	case protocol.CmdRetrieve:
		return s.handleRetrieve(conn, req)
	case protocol.CmdSession:
		// SESSION is only valid as a connection's first exchange
		// (serveSession handles it there); nesting sessions in streams is
		// refused.
		s.respond(conn, protocol.ErrorResponse("SESSION not valid here"))
		return errors.New("nested SESSION request")
	default:
		s.respond(conn, protocol.ErrorResponse("unsupported command %s", req.Command))
		return fmt.Errorf("unsupported command %d", int(req.Command))
	}
}

func (s *Server) respond(conn gsi.Channel, resp *protocol.Response) error {
	return conn.WriteMessage(protocol.MarshalResponse(resp))
}

// failf logs, counts, and sends an error response. The client-visible text
// is deliberately generic for authentication failures to avoid oracle
// behavior; detail goes to the audit log.
func (s *Server) failf(conn gsi.Channel, public string, format string, args ...interface{}) error {
	s.cfg.logf("DENIED %s: %s", conn.PeerIdentity(), fmt.Sprintf(format, args...))
	s.stats.AuthFailures.Add(1)
	return s.respond(conn, protocol.ErrorResponse("%s", public))
}

const (
	deniedMsg    = "authorization failed"
	notFoundMsg  = "no credentials found for user"
	badPhraseMsg = "bad pass phrase or username"
)

// --- SESSION: multiplexed pipelined exchanges over one connection ---

// unsealCache is a session-scoped cache of unsealed credentials. The
// streams of one multiplexed session typically repeat the same
// (username, pass phrase) exchange back to back — the pattern session
// mode exists for — and the sealing KDF (deliberately slow, paper §5.1)
// would otherwise dominate every pipelined get. The cache key binds the
// exact sealed bytes to the pass phrase, so a reseal, pass-phrase
// change, or replacement PUT changes the key and misses naturally.
//
// Security posture: every policy gate (ACLs, per-credential retriever
// lists, OTP, expiry, and the per-stream revocation re-check) still runs
// on every stream; only the KDF-and-decrypt step is skipped. Plaintext
// keys live no longer than they would in a client that held the session
// open — the life of one authenticated connection, capped by
// SessionTimeout — and are wiped when the session ends, so §5.1's
// at-rest property is unchanged.
type unsealCache struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*pki.Credential
}

func unsealKey(e *credstore.Entry, passphrase []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(e.SealedKey)
	h.Write([]byte{0})
	h.Write(passphrase)
	var k [sha256.Size]byte
	h.Sum(k[:0])
	return k
}

// lookup returns the cached unsealed credential, or nil. Nil-receiver
// safe: a single-exchange connection has no cache.
//myproxy:hotpath
func (c *unsealCache) lookup(e *credstore.Entry, passphrase []byte) *pki.Credential {
	if c == nil {
		return nil
	}
	// Hash outside the critical section (mirroring add): SHA-256 over the
	// sealed key is the expensive part, and every stream of the session
	// serializes on this mutex.
	k := unsealKey(e, passphrase)
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[k]
}

// add caches cred unless another stream raced it in first; it reports
// whether cred is now owned by the cache (and must not be dropped by the
// caller). Nil-receiver safe.
//myproxy:hotpath
func (c *unsealCache) add(e *credstore.Entry, passphrase []byte, cred *pki.Credential) bool {
	if c == nil {
		return false
	}
	k := unsealKey(e, passphrase)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		return false
	}
	if c.m == nil {
		c.m = make(map[[sha256.Size]byte]*pki.Credential)
	}
	c.m[k] = cred
	return true
}

// wipe zeroizes every cached private key; the session is over.
func (c *unsealCache) wipe() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, cred := range c.m {
		pki.WipeSigner(cred.PrivateKey)
		cred.PrivateKey = nil
		delete(c.m, k)
	}
}

// serveMultiplexed upgrades the connection to session mode: the client
// opens one stream per protocol exchange and the streams proceed
// concurrently, sharing the single TLS handshake already paid. The peer
// chain is re-verified (through the verify cache, which re-checks
// revocation on every hit and is invalidated by SetRevoked) before each
// stream is served, so a CRL reload refuses a revoked peer on the very
// next operation of an already-open session.
//myproxy:hotpath
func (s *Server) serveMultiplexed(conn *gsi.Conn) error {
	if s.cfg.DisableSessions {
		// A refusal here is the downgrade signal: the client falls back to
		// one connection per exchange, exactly what a pre-session server's
		// "unsupported command" answer produces.
		return s.respond(conn, protocol.ErrorResponse("session mode not supported"))
	}
	timeout := s.cfg.SessionTimeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	// Per-message deadlines belong to the one-exchange mode; a session is
	// capped absolutely instead (armDeadline is disarmed by the Session).
	if err := conn.SetDeadline(s.cfg.now().Add(timeout)); err != nil {
		return err
	}
	s.stats.Sessions.Add(1)
	sess := gsi.NewServerSession(conn)
	defer sess.Close()
	sc := &unsealCache{}
	defer sc.wipe()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		st, err := sess.Accept()
		if err != nil {
			// The client closed the connection or the session cap expired —
			// the normal end of a session, not a server fault.
			s.cfg.logf("session with %s ended: %v", conn.PeerIdentity(), err)
			return nil
		}
		if _, err := s.verifyCache.Verify(conn.PeerChain(), proxy.VerifyOptions{
			Roots: s.cfg.Roots, MaxDepth: s.cfg.MaxChainDepth, IsRevoked: s.revocationHook(),
		}); err != nil {
			s.stats.AuthFailures.Add(1)
			s.respond(st, protocol.ErrorResponse(deniedMsg))
			return fmt.Errorf("session peer %s no longer authorized: %w", conn.PeerIdentity(), err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Close()
			s.serveStream(st, sc)
		}()
	}
}

// serveStream runs one protocol exchange on one session stream.
//myproxy:hotpath
func (s *Server) serveStream(st *gsi.Stream, sc *unsealCache) {
	s.stats.Streams.Add(1)
	reqData, err := st.ReadMessage()
	if err != nil {
		return // stream abandoned; the session-level accounting covers it
	}
	req, err := protocol.ParseRequest(reqData)
	if err != nil {
		s.respond(st, protocol.ErrorResponse("malformed request: %v", err))
		return
	}
	if err := s.dispatch(st, req, sc); err != nil {
		s.stats.Errors.Add(1)
		s.cfg.logf("stream with %s: %v", st.PeerIdentity(), err)
	}
}

// --- PUT: myproxy-init (paper Fig. 1) ---

func (s *Server) handlePut(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AcceptedCredentials.Allows(peer) {
		return s.failf(conn, deniedMsg, "PUT by %s not in accepted_credentials", peer)
	}
	// Renewable credentials (paper §6.6) are deposited without a pass
	// phrase so authorized renewers can refresh long-running jobs; they
	// are sealed under the empty pass phrase (the myproxy-init -n
	// trade-off). Everything else must pass the quality policy.
	if req.Renewable && req.Passphrase != "" {
		return s.respond(conn, protocol.ErrorResponse("renewable credentials take no pass phrase"))
	}
	if !req.Renewable {
		if err := s.cfg.Passphrase.Check(req.Passphrase); err != nil {
			// Pass-phrase policy violations are safe (and useful) to surface.
			s.cfg.logf("DENIED %s: weak pass phrase: %v", peer, err)
			return s.respond(conn, protocol.ErrorResponse("pass phrase rejected: %v", err))
		}
	}
	// The server generates the key pair for an imported credential, by
	// default with its configured algorithm; the client may request another
	// via KEY_ALG (keyspec negotiation, PROTOCOL.md). An unparseable value
	// is refused before any state changes.
	spec := pki.KeySpec{Algorithm: s.cfg.DelegationKeyAlgorithm, Bits: s.cfg.DelegationKeyBits}
	if req.KeyAlg != "" {
		alg, err := pki.ParseKeyAlgorithm(req.KeyAlg)
		if err != nil {
			s.cfg.logf("DENIED %s: %v", peer, err)
			return s.respond(conn, protocol.ErrorResponse("unsupported key algorithm %q", req.KeyAlg))
		}
		spec.Algorithm = alg
	}
	lifetime := s.cfg.Lifetimes.ClampStored(req.Lifetime)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	// Import the credential: the client is the exporter, so the private
	// key is generated here — drawn from the background pool when one is
	// configured — and never crosses the wire.
	cred, err := gsi.RequestDelegationFrom(conn, s.cfg.KeySource, spec, s.cfg.Roots)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("PUT delegation from %s: %w", peer, err)
	}
	// The delegated chain must carry the authenticated peer's identity:
	// clients may only deposit their own credentials. The chain's leaf is
	// freshly minted, so this verification is never cache-served.
	res, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{
		Roots: s.cfg.Roots, MaxDepth: s.cfg.MaxChainDepth, IsRevoked: s.revocationHook(),
	})
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("delegated chain invalid: %v", err))
		return err
	}
	if res.IdentityString() != peer {
		s.respond(conn, protocol.ErrorResponse("delegated identity does not match authenticated identity"))
		return fmt.Errorf("PUT identity mismatch: chain %s, peer %s", res.IdentityString(), peer)
	}
	// Enforce the stored-lifetime policy: the client signs the proxy, so
	// the server verifies rather than dictates (slack for clock skew).
	if remaining := cred.TimeLeftAt(s.cfg.now()); remaining > lifetime+10*time.Minute {
		s.respond(conn, protocol.ErrorResponse(
			"delegated lifetime %v exceeds server maximum %v", remaining.Round(time.Minute), lifetime))
		return fmt.Errorf("PUT lifetime %v exceeds policy %v", remaining, lifetime)
	}

	entry := &credstore.Entry{
		Username:      req.Username,
		Name:          req.CredName,
		Owner:         peer,
		Description:   req.Description,
		Retrievers:    req.Retrievers,
		MaxDelegation: req.MaxDelegation,
		TaskTags:      req.TaskTags,
		Renewable:     req.Renewable,
		CreatedAt:     s.cfg.now(),
	}
	// Replacing an existing credential requires owning it.
	if prev, err := s.store.Get(req.Username, req.CredName); err == nil && prev.Owner != peer {
		s.respond(conn, protocol.ErrorResponse("credential exists and is owned by another identity"))
		return fmt.Errorf("PUT overwrite of %s/%s by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := credstore.SealDelegated(entry, cred, []byte(req.Passphrase), s.cfg.KDFIterations); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not seal credential"))
		return err
	}
	// Drop the plaintext key immediately (paper §5.1): the entry now holds
	// only the sealed form.
	cred.PrivateKey = nil
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not store credential"))
		return err
	}
	s.stats.Puts.Add(1)
	s.cfg.logf("STORED %q/%q for %s until %v", req.Username, req.CredName, peer, entry.NotAfter)
	return s.respond(conn, protocol.OKResponse())
}

// --- GET: myproxy-get-delegation (paper Fig. 2) ---

//myproxy:hotpath
func (s *Server) handleGet(conn gsi.Channel, req *protocol.Request, sc *unsealCache) error {
	if req.Renewal {
		return s.handleRenewal(conn, req)
	}
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "GET by %s not in authorized_retrievers", peer)
	}
	// One-time-password gate (paper §6.3): if the user is enrolled, a
	// valid, fresh OTP response is required in addition to the pass phrase
	// (the pass phrase still unseals the stored key; the OTP defeats
	// replay of a captured exchange, §5.1).
	if s.cfg.OTP != nil && s.cfg.OTP.Enabled(req.Username) {
		if req.OTP == "" {
			challenge, ok := s.cfg.OTP.Challenge(req.Username)
			if !ok {
				return s.failf(conn, "one-time password chain exhausted", "OTP exhausted for %q", req.Username)
			}
			s.stats.AuthFailures.Add(1)
			return s.respond(conn, &protocol.Response{
				Code: protocol.RespAuthRequired, Challenge: challenge,
			})
		}
		if err := s.cfg.OTP.Verify(req.Username, req.OTP); err != nil {
			return s.failf(conn, badPhraseMsg, "OTP verify for %q: %v", req.Username, err)
		}
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "GET %q/%q: %v", req.Username, req.CredName, err)
	}
	// Per-credential retrieval restriction composes with the server ACL.
	if entry.Retrievers != "" && !policyMatch(entry.Retrievers, peer) {
		return s.failf(conn, deniedMsg, "GET %q/%q: %s not in credential retriever list", req.Username, entry.Name, peer)
	}
	if entry.Expired(s.cfg.now()) {
		return s.failf(conn, "stored credential has expired", "GET %q/%q expired at %v", req.Username, entry.Name, entry.NotAfter)
	}
	// Within a session, repeated gets of the same sealed credential under
	// the same pass phrase skip the KDF via the session's unseal cache.
	// One mutable copy of the pass phrase serves the cache probe, the
	// unseal and the cache fill (three conversions allocated three copies
	// per GET before), and is wiped when the exchange ends.
	passphrase := []byte(req.Passphrase)
	defer pki.WipeBytes(passphrase)
	issuer := sc.lookup(entry, passphrase)
	cached := issuer != nil
	if !cached {
		var err error
		issuer, err = credstore.UnsealDelegated(entry, passphrase)
		if err != nil {
			if errors.Is(err, credstore.ErrBadPassphrase) {
				return s.failf(conn, badPhraseMsg, "GET %q/%q: bad pass phrase", req.Username, entry.Name)
			}
			s.respond(conn, protocol.ErrorResponse("could not open stored credential"))
			return err
		}
		cached = sc.add(entry, passphrase, issuer)
	}
	lifetime := s.cfg.Lifetimes.ClampDelegatedWithRestriction(req.Lifetime, entry.MaxDelegation)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	// Delegate to the client: the repository is the exporter here; the
	// client generates the key (paper Fig. 2).
	if _, err := gsi.Delegate(conn, issuer, proxy.Options{
		Type:     s.cfg.DelegationProxyType,
		Lifetime: lifetime,
	}); err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("GET delegation to %s: %w", peer, err)
	}
	// Drop the unsealed key (paper §5.1: plaintext exists only while in
	// active use); a session-cached key is dropped when the session ends.
	if !cached {
		issuer.PrivateKey = nil
	}
	s.stats.Gets.Add(1)
	s.cfg.logf("DELEGATED %q/%q to %s for %v", req.Username, entry.Name, peer, lifetime)
	return s.respond(conn, protocol.OKResponse())
}

// handleRenewal is the §6.6 path: a long-running job, authenticating with
// its current (soon-to-expire) proxy of the user's identity, obtains a
// fresh delegation without a pass phrase. Authorization is the renewer ACL
// plus an exact identity match with the stored credential's owner.
func (s *Server) handleRenewal(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRenewers.Allows(peer) {
		return s.failf(conn, deniedMsg, "RENEWAL by %s not in authorized_renewers", peer)
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "RENEWAL %q/%q: %v", req.Username, req.CredName, err)
	}
	if !entry.Renewable {
		return s.failf(conn, deniedMsg, "RENEWAL %q/%q: credential not renewable", req.Username, entry.Name)
	}
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "RENEWAL %q/%q: requester %s is not the credential identity %s",
			req.Username, entry.Name, peer, entry.Owner)
	}
	if entry.Expired(s.cfg.now()) {
		return s.failf(conn, "stored credential has expired", "RENEWAL %q/%q expired at %v", req.Username, entry.Name, entry.NotAfter)
	}
	issuer, err := credstore.UnsealDelegated(entry, nil)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("could not open stored credential"))
		return err
	}
	lifetime := s.cfg.Lifetimes.ClampDelegatedWithRestriction(req.Lifetime, entry.MaxDelegation)
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	if _, err := gsi.Delegate(conn, issuer, proxy.Options{
		Type:     s.cfg.DelegationProxyType,
		Lifetime: lifetime,
	}); err != nil {
		s.respond(conn, protocol.ErrorResponse("delegation failed: %v", err))
		return fmt.Errorf("RENEWAL delegation to %s: %w", peer, err)
	}
	issuer.PrivateKey = nil
	s.stats.Gets.Add(1)
	s.cfg.logf("RENEWED %q/%q for %s for %v", req.Username, entry.Name, peer, lifetime)
	return s.respond(conn, protocol.OKResponse())
}

// --- INFO: myproxy-info ---

func (s *Server) handleInfo(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	// Both depositors and retrievers may inspect; authentication is the
	// per-entry pass phrase.
	if !s.cfg.AcceptedCredentials.Allows(peer) && !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "INFO by %s not authorized", peer)
	}
	entries, err := s.store.List(req.Username)
	if err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	resp := &protocol.Response{Code: protocol.RespOK}
	for _, e := range entries {
		if e.CheckPassphrase([]byte(req.Passphrase)) != nil {
			continue // authenticate per entry; skip silently
		}
		resp.Infos = append(resp.Infos, protocol.CredInfo{
			Name:          e.Name,
			Owner:         e.Owner,
			Description:   e.Description,
			StartTime:     e.NotBefore.UTC(),
			EndTime:       e.NotAfter.UTC(),
			MaxDelegation: e.MaxDelegation,
			Retrievers:    e.Retrievers,
			TaskTags:      e.TaskTags,
		})
	}
	if len(resp.Infos) == 0 {
		return s.failf(conn, notFoundMsg, "INFO %q: no entries matched pass phrase", req.Username)
	}
	s.stats.Infos.Add(1)
	return s.respond(conn, resp)
}

// --- DESTROY: myproxy-destroy (paper §4.1) ---

func (s *Server) handleDestroy(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	entry, err := s.store.Get(req.Username, req.CredName)
	if err != nil {
		return s.failf(conn, notFoundMsg, "DESTROY %q/%q: %v", req.Username, req.CredName, err)
	}
	// Only the owner, with the pass phrase, may destroy.
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "DESTROY %q/%q by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := entry.CheckPassphrase([]byte(req.Passphrase)); err != nil {
		return s.failf(conn, badPhraseMsg, "DESTROY %q/%q: bad pass phrase", req.Username, req.CredName)
	}
	if err := s.store.Delete(req.Username, req.CredName); err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	s.stats.Destroys.Add(1)
	s.cfg.logf("DESTROYED %q/%q by %s", req.Username, req.CredName, peer)
	return s.respond(conn, protocol.OKResponse())
}

// --- CHANGE_PASSPHRASE: myproxy-change-passphrase ---

func (s *Server) handleChangePassphrase(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	entry, err := s.store.Get(req.Username, req.CredName)
	if err != nil {
		return s.failf(conn, notFoundMsg, "CHANGE_PASSPHRASE %q/%q: %v", req.Username, req.CredName, err)
	}
	if entry.Owner != peer {
		return s.failf(conn, deniedMsg, "CHANGE_PASSPHRASE %q/%q by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := s.cfg.Passphrase.Check(req.NewPassphrase); err != nil {
		return s.respond(conn, protocol.ErrorResponse("new pass phrase rejected: %v", err))
	}
	switch entry.Kind {
	case credstore.KindDelegated:
		if err := credstore.Reseal(entry, []byte(req.Passphrase), []byte(req.NewPassphrase), s.cfg.KDFIterations); err != nil {
			if errors.Is(err, credstore.ErrBadPassphrase) {
				return s.failf(conn, badPhraseMsg, "CHANGE_PASSPHRASE %q/%q: bad pass phrase", req.Username, req.CredName)
			}
			s.respond(conn, protocol.ErrorResponse("reseal failed"))
			return err
		}
	case credstore.KindStored:
		// The blob is sealed client-side; the server cannot re-encrypt it
		// (by design — it never sees the plaintext).
		return s.respond(conn, protocol.ErrorResponse(
			"stored credentials are sealed client-side; re-upload with myproxy-store to change the pass phrase"))
	}
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("store error"))
		return err
	}
	s.stats.PassphraseChange.Add(1)
	s.cfg.logf("RESEALED %q/%q by %s", req.Username, req.CredName, peer)
	return s.respond(conn, protocol.OKResponse())
}

// --- STORE: myproxy-store (paper §6.1) ---

func (s *Server) handleStore(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AcceptedCredentials.Allows(peer) {
		return s.failf(conn, deniedMsg, "STORE by %s not in accepted_credentials", peer)
	}
	if err := s.cfg.Passphrase.Check(req.Passphrase); err != nil {
		return s.respond(conn, protocol.ErrorResponse("pass phrase rejected: %v", err))
	}
	if prev, err := s.store.Get(req.Username, req.CredName); err == nil && prev.Owner != peer {
		return s.failf(conn, deniedMsg, "STORE overwrite of %q/%q by non-owner %s", req.Username, req.CredName, peer)
	}
	if err := s.respond(conn, protocol.OKResponse()); err != nil {
		return err
	}
	blob, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("STORE blob from %s: %w", peer, err)
	}
	if len(blob) == 0 {
		s.respond(conn, protocol.ErrorResponse("empty credential blob"))
		return errors.New("empty STORE blob")
	}
	entry := &credstore.Entry{
		Username:      req.Username,
		Name:          req.CredName,
		Owner:         peer,
		Kind:          credstore.KindStored,
		SealedKey:     blob,
		Description:   req.Description,
		Retrievers:    req.Retrievers,
		MaxDelegation: req.MaxDelegation,
		TaskTags:      req.TaskTags,
		CreatedAt:     s.cfg.now(),
	}
	if err := entry.SetPassphrase([]byte(req.Passphrase)); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not record pass phrase verifier"))
		return err
	}
	if err := s.store.Put(entry); err != nil {
		s.respond(conn, protocol.ErrorResponse("could not store credential"))
		return err
	}
	s.stats.Stores.Add(1)
	s.cfg.logf("STORED(blob) %q/%q for %s (%d bytes)", req.Username, req.CredName, peer, len(blob))
	return s.respond(conn, protocol.OKResponse())
}

// --- RETRIEVE: myproxy-retrieve (paper §6.1) ---

func (s *Server) handleRetrieve(conn gsi.Channel, req *protocol.Request) error {
	peer := conn.PeerIdentity()
	if !s.cfg.AuthorizedRetrievers.Allows(peer) {
		return s.failf(conn, deniedMsg, "RETRIEVE by %s not in authorized_retrievers", peer)
	}
	if s.cfg.OTP != nil && s.cfg.OTP.Enabled(req.Username) {
		if req.OTP == "" {
			challenge, ok := s.cfg.OTP.Challenge(req.Username)
			if !ok {
				return s.failf(conn, "one-time password chain exhausted", "OTP exhausted for %q", req.Username)
			}
			s.stats.AuthFailures.Add(1)
			return s.respond(conn, &protocol.Response{Code: protocol.RespAuthRequired, Challenge: challenge})
		}
		if err := s.cfg.OTP.Verify(req.Username, req.OTP); err != nil {
			return s.failf(conn, badPhraseMsg, "OTP verify for %q: %v", req.Username, err)
		}
	}
	entry, err := s.selectEntry(req.Username, req.CredName, req.TaskHint)
	if err != nil {
		return s.failf(conn, notFoundMsg, "RETRIEVE %q/%q: %v", req.Username, req.CredName, err)
	}
	if entry.Kind != credstore.KindStored {
		return s.failf(conn, "credential is not retrievable; use get-delegation",
			"RETRIEVE %q/%q is %s", req.Username, entry.Name, entry.Kind)
	}
	if entry.Retrievers != "" && !policyMatch(entry.Retrievers, peer) {
		return s.failf(conn, deniedMsg, "RETRIEVE %q/%q: %s not in credential retriever list", req.Username, entry.Name, peer)
	}
	if err := entry.CheckPassphrase([]byte(req.Passphrase)); err != nil {
		return s.failf(conn, badPhraseMsg, "RETRIEVE %q/%q: bad pass phrase", req.Username, entry.Name)
	}
	s.stats.Retrieves.Add(1)
	s.cfg.logf("RETRIEVED %q/%q by %s", req.Username, entry.Name, peer)
	return s.respond(conn, &protocol.Response{Code: protocol.RespOK, Blob: entry.SealedKey})
}
