package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/proxy"
	"repro/internal/testpki"
)

func TestChangePassphraseOnStoredBlobRefused(t *testing.T) {
	// Stored (client-sealed) blobs cannot be resealed server-side: the
	// server never sees the plaintext. The protocol must say so clearly.
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	cli := newClient(t, alice, addr)
	if err := cli.Store(context.Background(), StoreOptions{
		Username: testUser, Passphrase: testPass, CredName: "blob", Credential: alice,
	}); err != nil {
		t.Fatal(err)
	}
	err := cli.ChangePassphrase(context.Background(), testUser, testPass, "a new strong phrase", "blob")
	if err == nil || !strings.Contains(err.Error(), "sealed client-side") {
		t.Fatalf("reseal stored blob: %v", err)
	}
}

func TestChangePassphraseByNonOwner(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	bob := testpki.User(t, "core-bob")
	err := newClient(t, bob, addr).ChangePassphrase(context.Background(), testUser, testPass, "another phrase", "")
	if err == nil {
		t.Fatal("non-owner changed a pass phrase")
	}
}

func TestGetByNameNotFound(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	_, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, CredName: "no-such-name",
	})
	if err == nil || !strings.Contains(err.Error(), "no credentials") {
		t.Fatalf("missing name: %v", err)
	}
}

func TestDestroyUnknownCredential(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	err := newClient(t, alice, addr).Destroy(context.Background(), "ghost", "whatever pass", "")
	if err == nil {
		t.Fatal("destroyed nothing successfully")
	}
}

func TestInfoUnauthorizedIdentity(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.AcceptedCredentials = policy.NewACL("*/CN=core-alice")
		cfg.AuthorizedRetrievers = policy.NewACL("*/CN=core-alice")
	})
	mallory := testpki.User(t, "core-mallory")
	if _, err := newClient(t, mallory, addr).Info(context.Background(), testUser, testPass); err == nil {
		t.Fatal("unauthorized INFO succeeded")
	}
}

func TestRenewableRejectsPassphrase(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.AuthorizedRenewers = policy.NewACL("*")
	})
	alice := testpki.User(t, "core-alice")
	err := newClient(t, alice, addr).Put(context.Background(), PutOptions{
		Username: testUser, Passphrase: "some pass phrase", Renewable: true,
	})
	if err == nil || !strings.Contains(err.Error(), "take no pass phrase") {
		t.Fatalf("renewable with pass phrase: %v", err)
	}
}

func TestGetDelegationTypeConfigurable(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.DelegationProxyType = proxy.Legacy
	})
	alice := testpki.User(t, "core-alice")
	userCli := newClient(t, alice, addr)
	// Deposit with a legacy proxy so the stored chain is legacy-style and
	// the repository's legacy delegation does not mix styles.
	userCli.ProxyType = proxy.Legacy
	mustPut(t, userCli, PutOptions{})
	cred, err := newClient(t, testpki.Host(t, "portal.test"), addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass,
	})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := cred.SubjectDN()
	if err != nil {
		t.Fatal(err)
	}
	if cn := dn.CommonName(); cn != "proxy" {
		t.Errorf("CN = %q, want legacy 'proxy'", cn)
	}
}

func TestClientValidation(t *testing.T) {
	ctx := context.Background()
	c := &Client{}
	if _, err := c.Get(ctx, GetOptions{Username: "x"}); err == nil {
		t.Error("client without credential worked")
	}
	c.Credential = testpki.User(t, "core-alice")
	if _, err := c.Get(ctx, GetOptions{Username: "x"}); err == nil {
		t.Error("client without roots worked")
	}
	c.Roots = testRoots(t)
	c.Addr = "127.0.0.1:1" // nothing listens
	c.Timeout = time.Second
	if _, err := c.Get(ctx, GetOptions{Username: "x"}); err == nil {
		t.Error("client dialed nothing successfully")
	}
	if err := c.Store(ctx, StoreOptions{Username: "x"}); err == nil {
		t.Error("store without credential worked")
	}
}

func TestStatsSnapshotComplete(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{})
	snap := srv.Stats().Snapshot()
	for _, key := range []string{"connections", "puts", "gets", "auth_failures", "errors",
		"infos", "destroys", "passphrase_change", "stores", "retrieves"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	if snap["puts"] != 1 || snap["connections"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestServeAfterCloseRefused(t *testing.T) {
	srv, _ := startServer(t, nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := listenLoopback(t)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
}
