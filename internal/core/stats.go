package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// statsFileDoc is the on-disk shape of a stats snapshot.
type statsFileDoc struct {
	// WrittenAt stamps the snapshot so operators can tell a live flush
	// from a stale file.
	WrittenAt time.Time        `json:"written_at"`
	Counters  map[string]int64 `json:"counters"`
}

// WriteFile atomically persists a snapshot of the counters as JSON, for
// offline inspection with myproxy-admin stats. The write is
// temp-file+rename so a crash mid-flush never leaves a torn document.
func (s *Stats) WriteFile(path string) error {
	doc := statsFileDoc{WrittenAt: time.Now().UTC(), Counters: s.Snapshot()}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("core: encode stats: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".stats-*")
	if err != nil {
		return fmt.Errorf("core: stats temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("core: write stats: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, path)
}

// ReadStatsFile loads a snapshot written by WriteFile, returning the
// counters and the time they were written.
func ReadStatsFile(path string) (map[string]int64, time.Time, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("core: read stats file: %w", err)
	}
	var doc statsFileDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, time.Time{}, fmt.Errorf("core: decode stats file %s: %w", filepath.Base(path), err)
	}
	if doc.Counters == nil {
		doc.Counters = map[string]int64{}
	}
	return doc.Counters, doc.WrittenAt, nil
}
