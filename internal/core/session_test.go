package core

import (
	"context"
	"crypto/ed25519"
	"crypto/x509"
	"testing"
	"time"

	"repro/internal/pki"
	"repro/internal/testpki"
)

// TestSessionPipelinesExchanges proves the multiplexed hot path: one
// authenticated connection carries a batch of pipelined Fig. 2 exchanges,
// and the server accounts them as one session with N streams.
func TestSessionPipelinesExchanges(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "sess-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "sess-portal.test")
	cli := newClient(t, portal, addr)
	sess, err := cli.NewSession(context.Background())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	if !sess.Multiplexed() {
		t.Fatal("server declined session mode; expected multiplexing")
	}

	opts := make([]GetOptions, 4)
	for i := range opts {
		opts[i] = GetOptions{Username: testUser, Passphrase: testPass, Lifetime: time.Hour}
	}
	creds, err := sess.GetBatch(context.Background(), opts)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i, cred := range creds {
		if cred == nil {
			t.Fatalf("GetBatch left creds[%d] nil without error", i)
		}
		if err := cred.Validate(time.Now()); err != nil {
			t.Fatalf("creds[%d] invalid: %v", i, err)
		}
	}
	// Info rides the same session too.
	infos, err := sess.Info(context.Background(), testUser, testPass)
	if err != nil || len(infos) == 0 {
		t.Fatalf("Info over session = %v, %v", infos, err)
	}
	if n := srv.Stats().Sessions.Load(); n != 1 {
		t.Errorf("sessions = %d, want 1", n)
	}
	if n := srv.Stats().Streams.Load(); n != 5 {
		t.Errorf("streams = %d, want 5 (4 gets + 1 info)", n)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestSessionCarriesKeyAlgorithm proves algorithm agility end to end over
// the multiplexed path: a client asking for Ed25519 delegation keys gets an
// Ed25519 proxy back through a session stream.
func TestSessionCarriesKeyAlgorithm(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "sess-ed-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "sess-ed-portal.test")
	cli := newClient(t, portal, addr)
	cli.KeyAlgorithm = pki.AlgEd25519
	sess, err := cli.NewSession(context.Background())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	cred, err := sess.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if alg, _ := pki.AlgorithmOf(cred.PrivateKey); alg != pki.AlgEd25519 {
		t.Fatalf("delegated key algorithm = %v, want ed25519", alg)
	}
	if err := cred.Validate(time.Now()); err != nil {
		t.Fatalf("ed25519 credential invalid: %v", err)
	}
}

// TestSessionDowngrade proves the legacy path: a server with sessions
// disabled answers the SESSION hello with an error verdict, and the client
// degrades to one connection per exchange — same results, no multiplexing.
func TestSessionDowngrade(t *testing.T) {
	_, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.DisableSessions = true
	})
	alice := testpki.User(t, "sess-down-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "sess-down-portal.test")
	sess, err := newClient(t, portal, addr).NewSession(context.Background())
	if err != nil {
		t.Fatalf("NewSession against a no-session server: %v", err)
	}
	defer sess.Close()
	if sess.Multiplexed() {
		t.Fatal("session reports multiplexed against a refusing server")
	}
	cred, err := sess.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatalf("degraded Get: %v", err)
	}
	if err := cred.Validate(time.Now()); err != nil {
		t.Fatalf("degraded credential invalid: %v", err)
	}
}

// TestSessionRevokedPeerRefusedMidSession pins the security property the
// session mode must not weaken: a CRL reload (SetRevoked) refuses the peer
// on its NEXT stream even though the session — with its cached chain
// verification and resumed TLS state — is already open and has served
// exchanges.
func TestSessionRevokedPeerRefusedMidSession(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "sess-rev-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "sess-rev-portal.test")
	sess, err := newClient(t, portal, addr).NewSession(context.Background())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	if !sess.Multiplexed() {
		t.Fatal("expected a multiplexed session")
	}
	if _, err := sess.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	}); err != nil {
		t.Fatalf("Get before revocation: %v", err)
	}

	// "CRL reload": the portal's certificate is revoked while its session
	// is open and pipelining.
	serial := portal.Certificate.SerialNumber.String()
	srv.SetRevoked(func(c *x509.Certificate) bool {
		return c.SerialNumber.String() == serial
	})

	if _, err := sess.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	}); err == nil {
		t.Fatal("revoked peer served on an already-open session")
	}
}

// TestPutServerSideKeyAlgorithm proves the KEY_ALG request key: a PUT asking
// for Ed25519 makes the server generate the stored proxy's key pair with
// that algorithm, visible in the issuer certificate of a later delegation.
func TestPutServerSideKeyAlgorithm(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "keyalg-alice")
	userCli := newClient(t, alice, addr)
	userCli.KeyAlgorithm = pki.AlgEd25519
	mustPut(t, userCli, PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "keyalg-portal.test")
	cred, err := newClient(t, portal, addr).Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	chain := cred.CertChain()
	if len(chain) < 2 {
		t.Fatalf("delegated chain has %d certificates", len(chain))
	}
	// chain[1] is the stored proxy the repository holds — the certificate
	// whose key PUT asked the server to generate as Ed25519.
	if _, ok := chain[1].PublicKey.(ed25519.PublicKey); !ok {
		t.Fatalf("stored proxy key is %T, want ed25519", chain[1].PublicKey)
	}
}

// TestSessionStreamAllocs pins the allocation profile of one pipelined
// Fig. 2 exchange over an established session — the multiplexed path PRs 3
// and 8 built exists to amortize the handshake, key generation and chain
// verification, and this test keeps the residue from regrowing. The count
// covers both sides (client and in-process server) and measures ~1.2k
// objects steady-state; the bound leaves ~20% slack for runtime and
// scheduling noise while a reintroduced per-request keypair or per-stream
// chain walk (tens of thousands of allocations) still fails loudly.
// AllocsPerRun's warm-up run absorbs the session's first-use costs (unseal
// cache fill, verify cache miss).
func TestSessionStreamAllocs(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "alloc-alice")
	mustPut(t, newClient(t, alice, addr), PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "alloc-portal.test")
	cli := newClient(t, portal, addr)
	// Ed25519 delegation keys keep the measured loop free of RSA keygen's
	// nondeterministic allocation tail.
	cli.KeyAlgorithm = pki.AlgEd25519
	sess, err := cli.NewSession(context.Background())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	defer sess.Close()
	if !sess.Multiplexed() {
		t.Fatal("server declined session mode")
	}
	opts := GetOptions{Username: testUser, Passphrase: testPass, Lifetime: time.Hour}
	allocs := testing.AllocsPerRun(30, func() {
		if _, err := sess.Get(context.Background(), opts); err != nil {
			t.Fatalf("session Get: %v", err)
		}
	})
	if allocs > 1500 {
		t.Errorf("per-stream session Get allocates %.0f objects/op, want <= 1500", allocs)
	}
}
