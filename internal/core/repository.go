package core

import (
	"context"

	"repro/internal/pki"
	"repro/internal/protocol"
)

// Repository is the operation surface every repository consumer programs
// against: the seven client operations of the paper's protocol (§4).
// *Client implements it against a single repository node; a cluster client
// implements it with consistent-hash shard routing, replicated writes, and
// read failover across many nodes (DESIGN.md §12). Front-ends — the portal,
// the CLI tools, the simulation harness — take a Repository, so swapping a
// single node for a cluster changes wiring, not call sites.
type Repository interface {
	// Put delegates a proxy into the repository (myproxy-init, Fig. 1).
	Put(ctx context.Context, opts PutOptions) error
	// Get retrieves a delegated proxy (myproxy-get-delegation, Fig. 2).
	Get(ctx context.Context, opts GetOptions) (*pki.Credential, error)
	// Info lists stored credentials the pass phrase authenticates.
	Info(ctx context.Context, username, passphrase string) ([]protocol.CredInfo, error)
	// Destroy removes a stored credential (paper §4.1).
	Destroy(ctx context.Context, username, passphrase, credName string) error
	// ChangePassphrase re-seals a stored credential under a new pass phrase.
	ChangePassphrase(ctx context.Context, username, oldPass, newPass, credName string) error
	// Store deposits a client-sealed long-term credential (paper §6.1).
	Store(ctx context.Context, opts StoreOptions) error
	// Retrieve downloads and unseals a deposit made with Store.
	Retrieve(ctx context.Context, opts RetrieveOptions) (*pki.Credential, error)
}

var _ Repository = (*Client)(nil)
