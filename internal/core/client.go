package core

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/gsi"
	"repro/internal/otp"
	"repro/internal/pki"
	"repro/internal/protocol"
	"repro/internal/proxy"
	"repro/internal/resilience"
)

// Client talks to a MyProxy repository. It is the library under the
// myproxy-* command-line tools and the Grid portal (paper §4.4 describes the
// equivalent C and Java client APIs).
//
// Failure semantics: with a Retry policy configured, transient transport
// faults (refused connections, handshake resets, dropped reads) are retried
// with backoff. Idempotent operations — Get, Info, Retrieve — retry through
// any transport fault. Mutations — Put, Store, Destroy, ChangePassphrase —
// retry only faults that provably precede the commit point; a fault after
// the request may have committed surfaces as *resilience.AmbiguousError
// instead of being blindly replayed (replaying a DESTROY after a lost
// confirmation would report a spurious "not found"; replaying a PUT could
// overwrite a newer deposit). Definitive server verdicts (authorization
// failures, bad pass phrases, policy rejections) are never retried.
type Client struct {
	// Credential authenticates the client: the user's proxy for
	// myproxy-init, the portal's host credential for
	// myproxy-get-delegation (paper §4.3 step 2).
	Credential *pki.Credential
	// Roots are the trusted CAs for authenticating the repository.
	Roots *x509.CertPool
	// Addr is the repository's network address.
	Addr string
	// ExpectedServer optionally pins the repository identity (DN pattern);
	// strongly recommended (paper §5.1 mutual authentication).
	ExpectedServer string
	// KeyAlgorithm selects the algorithm for keys generated for incoming
	// delegations (and, via KEY_ALG, requested of the server for PUT); the
	// zero value is RSA, the paper-fidelity default.
	KeyAlgorithm pki.KeyAlgorithm
	// KeyBits sizes RSA keys generated for incoming delegations; 0 selects
	// pki.DefaultKeyBits. Ignored for non-RSA algorithms.
	KeyBits int
	// KeySource, when non-nil, supplies delegation key pairs (typically a
	// keypool.Pool shared across clients), taking RSA generation off the
	// request path. nil generates synchronously.
	KeySource proxy.KeySource
	// ProxyType selects the style of proxy delegated *to* the repository
	// by Put; the zero value selects proxy.RFC3820.
	ProxyType proxy.Type
	// Timeout bounds one attempt (0 = 30s).
	Timeout time.Duration
	// DialContext optionally overrides the transport dialer (tests,
	// simulation rigs, fault injection).
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
	// Retry governs automatic retries of transient failures; the zero
	// value performs exactly one attempt.
	Retry resilience.Policy
	// Stats, when non-nil, receives the client-side resilience counters
	// (Retries, Ambiguous); share one Stats across clients to aggregate.
	Stats *Stats

	// Connection-establishment fast-path state, built once per Client on
	// first use: a TLS session cache (keyed per destination address) so
	// repeat connections resume instead of full-handshaking, and a chain
	// verification cache so the repository's unchanged credential chain is
	// not re-walked every operation. Both are transparent to semantics —
	// peer verification (including revocation) runs on every connection.
	connOnce    sync.Once
	tlsCfg      *tls.Config
	verifyCache *proxy.VerifyCache
	connErr     error
}

// keySpec assembles the delegation key spec from the client's settings.
func (c *Client) keySpec() pki.KeySpec {
	return pki.KeySpec{Algorithm: c.KeyAlgorithm, Bits: c.KeyBits}
}

// wireKeyAlg is the KEY_ALG request value: empty for RSA (legacy servers
// get a byte-identical request), the algorithm name otherwise.
func (c *Client) wireKeyAlg() string {
	if c.KeyAlgorithm == pki.AlgRSA {
		return ""
	}
	return c.KeyAlgorithm.String()
}

// ErrOTPRequired is returned (wrapped) when the repository demands a
// one-time password; the Challenge field carries the server's challenge.
type ErrOTPRequired struct{ Challenge string }

func (e *ErrOTPRequired) Error() string {
	return fmt.Sprintf("myproxy server requires one-time password (challenge %q)", e.Challenge)
}

// do runs one operation attempt function under the retry policy, wiring the
// client's counters into the policy's observer.
func (c *Client) do(ctx context.Context, fn func(ctx context.Context) error) error {
	pol := c.Retry
	prev := pol.OnRetry
	pol.OnRetry = func(attempt int, err error, backoff time.Duration) {
		if c.Stats != nil {
			c.Stats.Retries.Add(1)
		}
		if prev != nil {
			prev(attempt, err, backoff)
		}
	}
	err := pol.Do(ctx, fn)
	if err != nil && c.Stats != nil && resilience.IsAmbiguous(err) {
		c.Stats.Ambiguous.Add(1)
	}
	return err
}

// ambiguous marks a transport fault in a mutation's commit window, leaving
// definitive server verdicts (already Permanent) untouched.
func ambiguous(op string, err error) error {
	if err == nil || resilience.IsPermanent(err) {
		return err
	}
	return resilience.Ambiguous(op, err)
}

// clientConn couples a GSI channel to the operation context: cancelling the
// context aborts in-flight I/O (not just dialing) by slamming the deadline.
type clientConn struct {
	*gsi.Conn
	stop chan struct{}
	once sync.Once
}

func (cc *clientConn) Close() error {
	cc.once.Do(func() { close(cc.stop) })
	return cc.Conn.Close()
}

func (c *Client) connect(ctx context.Context) (*clientConn, error) {
	if c.Credential == nil {
		return nil, resilience.Permanent(errors.New("core: client requires a credential"))
	}
	if c.Roots == nil {
		return nil, resilience.Permanent(errors.New("core: client requires trust roots"))
	}
	c.connOnce.Do(func() {
		c.tlsCfg, c.connErr = gsi.NewClientTLSConfig(c.Credential, tls.NewLRUClientSessionCache(0))
		c.verifyCache = proxy.NewVerifyCache(0)
	})
	if c.connErr != nil {
		return nil, resilience.Permanent(c.connErr)
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	opts := gsi.AuthOptions{
		Roots:            c.Roots,
		ExpectedPeer:     c.ExpectedServer,
		HandshakeTimeout: timeout,
		Cache:            c.verifyCache,
		TLSConfig:        c.tlsCfg,
	}
	var raw net.Conn
	var err error
	if c.DialContext != nil {
		raw, err = c.DialContext(ctx, "tcp", c.Addr)
	} else {
		var d net.Dialer
		raw, err = d.DialContext(ctx, "tcp", c.Addr)
	}
	if err != nil {
		return nil, fmt.Errorf("core: dial %s: %w", c.Addr, err)
	}
	conn, err := gsi.Client(raw, c.Credential, opts)
	if err != nil {
		// gsi.Client leaves the raw conn open when the handshake fails;
		// it is still ours to close (double-close on a net.Conn is safe).
		_ = raw.Close()
		return nil, err
	}
	// The whole operation — not just the dial — respects the context: the
	// deadline is the earlier of the per-attempt timeout and the context's,
	// and an outright cancellation aborts in-flight I/O immediately.
	deadline := time.Now().Add(timeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	conn.SetDeadline(deadline)
	cc := &clientConn{Conn: conn, stop: make(chan struct{})}
	go func() {
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0)) // wake any blocked read/write
		case <-cc.stop:
		}
	}()
	return cc, nil
}

// roundTrip sends req and reads the server's verdict. Server-side verdicts
// (error responses, OTP challenges) are Permanent — retrying cannot change
// them. Transport faults while *reading* the response are ambiguous for
// mutations (commitOp != ""): the server saw the request and may have
// committed before the confirmation was lost.
func (c *Client) roundTrip(conn gsi.Channel, req *protocol.Request, commitOp string) (*protocol.Response, error) {
	data, err := protocol.MarshalRequest(req)
	if err != nil {
		return nil, resilience.Permanent(err)
	}
	if err := conn.WriteMessage(data); err != nil {
		return nil, err
	}
	respData, err := conn.ReadMessage()
	if err != nil {
		err = fmt.Errorf("core: read response: %w", err)
		if commitOp != "" {
			return nil, resilience.Ambiguous(commitOp, err)
		}
		return nil, err
	}
	resp, err := protocol.ParseResponse(respData)
	if err != nil {
		if commitOp != "" {
			return nil, resilience.Ambiguous(commitOp, err)
		}
		return nil, err
	}
	if resp.Code == protocol.RespAuthRequired {
		return nil, resilience.Permanent(&ErrOTPRequired{Challenge: resp.Challenge})
	}
	if rerr := resp.Err(); rerr != nil {
		return resp, resilience.Permanent(rerr)
	}
	return resp, nil
}

// readFinal consumes the post-delegation confirmation.
func (c *Client) readFinal(conn gsi.Channel) error {
	respData, err := conn.ReadMessage()
	if err != nil {
		return fmt.Errorf("core: read final response: %w", err)
	}
	resp, err := protocol.ParseResponse(respData)
	if err != nil {
		return err
	}
	if rerr := resp.Err(); rerr != nil {
		return resilience.Permanent(rerr)
	}
	return nil
}

// PutOptions parameterizes Put (myproxy-init, paper Fig. 1).
type PutOptions struct {
	Username   string
	Passphrase string
	// Lifetime of the credential delegated to the repository; 0 selects
	// the one-week default (paper §4.1).
	Lifetime time.Duration
	// CredName names the credential (wallet, §6.2); empty = default.
	CredName    string
	Description string
	// Retrievers narrows which DNs may later retrieve this credential.
	Retrievers string
	// MaxDelegation caps proxies the repository may delegate from this
	// credential (the §4.1 retrieval restriction).
	MaxDelegation time.Duration
	// TaskTags label the credential for wallet selection (§6.2).
	TaskTags []string
	// Renewable deposits the credential without a pass phrase so that
	// authorized renewers can refresh long-running jobs (paper §6.6);
	// Passphrase must be empty.
	Renewable bool
}

// Put delegates a proxy of the client's credential to the repository under
// (Username, Passphrase): the myproxy-init operation of paper Figure 1.
// Failures before the delegation starts are retried under the Retry policy;
// once the delegation is in flight the deposit may commit server-side, so
// later faults surface as *resilience.AmbiguousError.
func (c *Client) Put(ctx context.Context, opts PutOptions) error {
	lifetime := opts.Lifetime
	if lifetime <= 0 {
		lifetime = 7 * 24 * time.Hour
	}
	return c.do(ctx, func(ctx context.Context) error {
		return c.putOnce(ctx, opts, lifetime)
	})
}

func (c *Client) putOnce(ctx context.Context, opts PutOptions, lifetime time.Duration) error {
	conn, err := c.connect(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := &protocol.Request{
		Command:       protocol.CmdPut,
		Username:      opts.Username,
		Passphrase:    opts.Passphrase,
		Lifetime:      lifetime,
		CredName:      opts.CredName,
		Description:   opts.Description,
		Retrievers:    opts.Retrievers,
		MaxDelegation: opts.MaxDelegation,
		TaskTags:      opts.TaskTags,
		Renewable:     opts.Renewable,
		KeyAlg:        c.wireKeyAlg(),
	}
	// The first response precedes any server-side state change: failures
	// up to here are retry-safe.
	if _, err := c.roundTrip(conn.Conn, req, ""); err != nil {
		return err
	}
	// Commit window: the server stores the credential when the delegation
	// completes, so a fault from here on leaves the outcome unknown.
	if _, err := gsi.Delegate(conn.Conn, c.Credential, proxy.Options{
		Type:     c.ProxyType,
		Lifetime: lifetime,
	}); err != nil {
		return ambiguous("PUT", fmt.Errorf("core: delegate to repository: %w", err))
	}
	return ambiguous("PUT", c.readFinal(conn.Conn))
}

// GetOptions parameterizes Get (myproxy-get-delegation, paper Fig. 2).
type GetOptions struct {
	Username   string
	Passphrase string
	// Lifetime of the proxy requested back; 0 selects the server default
	// ("a few hours", paper §4.3).
	Lifetime time.Duration
	// CredName selects a named credential; TaskHint asks the wallet to
	// choose one (§6.2).
	CredName string
	TaskHint string
	// OTP answers a one-time-password challenge (§6.3). Leave empty on the
	// first attempt; if the server requires OTP, Get returns
	// *ErrOTPRequired carrying the challenge, or use OTPSecret to answer
	// automatically.
	OTP string
	// OTPSecret, when non-empty, computes OTP responses from the secret
	// pass phrase transparently on challenge.
	OTPSecret string
	// Renewal requests a pass-phrase-less renewal of a renewable
	// credential (paper §6.6); the client must authenticate with a proxy
	// of the stored credential's own identity.
	Renewal bool
}

// Get retrieves a delegated proxy credential from the repository: the
// myproxy-get-delegation operation of paper Figure 2. Get is idempotent and
// retries any transient fault under the Retry policy.
func (c *Client) Get(ctx context.Context, opts GetOptions) (*pki.Credential, error) {
	cred, err := c.get(ctx, opts)
	if err == nil {
		return cred, nil
	}
	var otpErr *ErrOTPRequired
	if errors.As(err, &otpErr) && opts.OTPSecret != "" && opts.OTP == "" {
		resp, rerr := otp.Respond(otpErr.Challenge, opts.OTPSecret)
		if rerr != nil {
			return nil, rerr
		}
		opts.OTP = resp
		return c.get(ctx, opts)
	}
	return nil, err
}

func (c *Client) get(ctx context.Context, opts GetOptions) (*pki.Credential, error) {
	var cred *pki.Credential
	err := c.do(ctx, func(ctx context.Context) error {
		var err error
		cred, err = c.getOnce(ctx, opts)
		return err
	})
	if err != nil {
		return nil, err
	}
	return cred, nil
}

func (c *Client) getOnce(ctx context.Context, opts GetOptions) (*pki.Credential, error) {
	conn, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	req := &protocol.Request{
		Command:    protocol.CmdGet,
		Username:   opts.Username,
		Passphrase: opts.Passphrase,
		Lifetime:   opts.Lifetime,
		CredName:   opts.CredName,
		TaskHint:   opts.TaskHint,
		OTP:        opts.OTP,
		Renewal:    opts.Renewal,
	}
	if _, err := c.roundTrip(conn.Conn, req, ""); err != nil {
		return nil, err
	}
	cred, err := gsi.RequestDelegationFrom(conn.Conn, c.KeySource, c.keySpec(), c.Roots)
	if err != nil {
		return nil, fmt.Errorf("core: receive delegation: %w", err)
	}
	if err := c.readFinal(conn.Conn); err != nil {
		return nil, err
	}
	return cred, nil
}

// Info lists the credentials stored under username that the pass phrase
// authenticates (myproxy-info). Info is idempotent and retries transient
// faults.
func (c *Client) Info(ctx context.Context, username, passphrase string) ([]protocol.CredInfo, error) {
	var infos []protocol.CredInfo
	err := c.do(ctx, func(ctx context.Context) error {
		conn, err := c.connect(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		resp, err := c.roundTrip(conn.Conn, &protocol.Request{
			Command: protocol.CmdInfo, Username: username, Passphrase: passphrase,
		}, "")
		if err != nil {
			return err
		}
		infos = resp.Infos
		return nil
	})
	if err != nil {
		return nil, err
	}
	return infos, nil
}

// Destroy removes a stored credential (myproxy-destroy, paper §4.1).
// Connection and request-send failures are retried; a fault after the
// request was delivered is ambiguous (the credential may already be gone)
// and surfaces as *resilience.AmbiguousError.
func (c *Client) Destroy(ctx context.Context, username, passphrase, credName string) error {
	return c.do(ctx, func(ctx context.Context) error {
		conn, err := c.connect(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		_, err = c.roundTrip(conn.Conn, &protocol.Request{
			Command: protocol.CmdDestroy, Username: username, Passphrase: passphrase, CredName: credName,
		}, "DESTROY")
		return err
	})
}

// ChangePassphrase re-seals a stored credential under a new pass phrase
// (myproxy-change-passphrase). Same commit semantics as Destroy: only
// pre-delivery faults retry.
func (c *Client) ChangePassphrase(ctx context.Context, username, oldPass, newPass, credName string) error {
	return c.do(ctx, func(ctx context.Context) error {
		conn, err := c.connect(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		_, err = c.roundTrip(conn.Conn, &protocol.Request{
			Command: protocol.CmdChangePassphrase, Username: username,
			Passphrase: oldPass, NewPassphrase: newPass, CredName: credName,
		}, "CHANGE_PASSPHRASE")
		return err
	})
}

// StoreOptions parameterizes Store (myproxy-store, paper §6.1).
type StoreOptions struct {
	Username   string
	Passphrase string
	CredName   string
	// Credential is the long-term credential to deposit. It is sealed
	// client-side under the pass phrase; the repository never sees the
	// plaintext private key.
	Credential  *pki.Credential
	Description string
	Retrievers  string
	TaskTags    []string
}

// Store seals a long-term credential client-side and deposits the opaque
// container in the repository (paper §6.1: "managing long-term Grid
// credentials on the user's behalf"). Failures before the sealed blob is
// sent are retried; afterwards the deposit may have committed and faults
// surface as *resilience.AmbiguousError.
func (c *Client) Store(ctx context.Context, opts StoreOptions) error {
	if opts.Credential == nil {
		return errors.New("core: Store requires a credential")
	}
	plainPEM := opts.Credential.EncodePEM()
	blob, err := pki.SealBytes(plainPEM, []byte(opts.Passphrase), 0)
	pki.WipeBytes(plainPEM) // sealed; drop the plaintext encoding
	if err != nil {
		return err
	}
	return c.do(ctx, func(ctx context.Context) error {
		conn, err := c.connect(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		req := &protocol.Request{
			Command:     protocol.CmdStore,
			Username:    opts.Username,
			Passphrase:  opts.Passphrase,
			CredName:    opts.CredName,
			Description: opts.Description,
			Retrievers:  opts.Retrievers,
			TaskTags:    opts.TaskTags,
		}
		if _, err := c.roundTrip(conn.Conn, req, ""); err != nil {
			return err
		}
		// Commit window: the server stores the blob when it arrives.
		if err := conn.WriteMessage(blob); err != nil {
			return ambiguous("STORE", err)
		}
		return ambiguous("STORE", c.readFinal(conn.Conn))
	})
}

// RetrieveOptions parameterizes Retrieve (myproxy-retrieve, paper §6.1).
type RetrieveOptions struct {
	Username   string
	Passphrase string
	CredName   string
	TaskHint   string
	OTP        string
	OTPSecret  string
}

// Retrieve downloads and unseals a long-term credential deposited with
// Store. Unsealing happens client-side with the pass phrase. Retrieve is
// idempotent and retries any transient fault.
func (c *Client) Retrieve(ctx context.Context, opts RetrieveOptions) (*pki.Credential, error) {
	cred, err := c.retrieve(ctx, opts)
	if err == nil {
		return cred, nil
	}
	var otpErr *ErrOTPRequired
	if errors.As(err, &otpErr) && opts.OTPSecret != "" && opts.OTP == "" {
		resp, rerr := otp.Respond(otpErr.Challenge, opts.OTPSecret)
		if rerr != nil {
			return nil, rerr
		}
		opts.OTP = resp
		return c.retrieve(ctx, opts)
	}
	return nil, err
}

func (c *Client) retrieve(ctx context.Context, opts RetrieveOptions) (*pki.Credential, error) {
	var cred *pki.Credential
	err := c.do(ctx, func(ctx context.Context) error {
		conn, err := c.connect(ctx)
		if err != nil {
			return err
		}
		defer conn.Close()
		resp, err := c.roundTrip(conn.Conn, &protocol.Request{
			Command:    protocol.CmdRetrieve,
			Username:   opts.Username,
			Passphrase: opts.Passphrase,
			CredName:   opts.CredName,
			TaskHint:   opts.TaskHint,
			OTP:        opts.OTP,
		}, "")
		if err != nil {
			return err
		}
		plain, err := pki.OpenBytes(resp.Blob, []byte(opts.Passphrase))
		if err != nil {
			// The blob arrived intact over TLS; a bad unseal is a bad
			// pass phrase or corrupt deposit, not a transport fault.
			return resilience.Permanent(err)
		}
		cred, err = pki.DecodeCredentialPEM(plain, nil)
		pki.WipeBytes(plain) // decoded into cred; drop the plaintext PEM
		if err != nil {
			return resilience.Permanent(err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cred, nil
}
