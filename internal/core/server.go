package core

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/credstore"
	"repro/internal/gsi"
	"repro/internal/policy"
	"repro/internal/proxy"
)

// Server is a MyProxy repository server (paper §4).
type Server struct {
	cfg   ServerConfig
	store credstore.Store
	stats Stats

	// tlsCfg is shared across all accepted connections so TLS session
	// tickets resume (the ticket keys live in the config); verifyCache
	// memoizes client chain verifications across connections; isRevoked
	// holds the swappable revocation hook (SetRevoked).
	tlsCfg      *tls.Config
	verifyCache *proxy.VerifyCache
	isRevoked   atomic.Value // of func(*x509.Certificate) bool

	// sem, when non-nil, caps concurrently served connections
	// (cfg.MaxConcurrent); the accept loop blocks on it — backpressure
	// rather than unbounded goroutine pileup.
	sem chan struct{}

	mu        sync.Mutex
	listeners map[net.Listener]struct{} //myproxy:guardedby mu
	active    map[net.Conn]struct{}     //myproxy:guardedby mu
	conns     sync.WaitGroup
	closed    bool //myproxy:guardedby mu
	// quit is closed (under mu) to broadcast shutdown; receives are
	// deliberately lock-free — the channel is its own synchronization.
	quit chan struct{}
}

// Stats counts repository operations; all fields are updated atomically.
// A Stats may also be shared with a Client (Client.Stats), in which case the
// client-side resilience counters (Retries, Ambiguous) are populated too.
type Stats struct {
	Connections      atomic.Int64
	AuthFailures     atomic.Int64
	Puts             atomic.Int64
	Gets             atomic.Int64
	Infos            atomic.Int64
	Destroys         atomic.Int64
	PassphraseChange atomic.Int64
	Stores           atomic.Int64
	Retrieves        atomic.Int64
	Errors           atomic.Int64

	// Sessions counts multiplexed sessions opened (SESSION command);
	// Streams counts exchanges served on session streams (these operations
	// also count in their per-command counters above).
	Sessions atomic.Int64
	Streams  atomic.Int64

	// Resilience counters.
	// Timeouts counts sessions evicted by a per-message I/O deadline
	// (stalled peers, slowloris clients).
	Timeouts atomic.Int64
	// DrainRefusals counts connections refused because the server was
	// draining (shutdown in progress) or gave up waiting for a slot.
	DrainRefusals atomic.Int64
	// ForcedCloses counts in-flight sessions cut off when the drain
	// timeout expired.
	ForcedCloses atomic.Int64
	// Retries counts retry attempts made by a Client sharing this Stats.
	Retries atomic.Int64
	// Ambiguous counts mutations whose outcome was left unknown by a
	// transport failure (surfaced, never blindly retried).
	Ambiguous atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"connections":       s.Connections.Load(),
		"auth_failures":     s.AuthFailures.Load(),
		"puts":              s.Puts.Load(),
		"gets":              s.Gets.Load(),
		"infos":             s.Infos.Load(),
		"destroys":          s.Destroys.Load(),
		"passphrase_change": s.PassphraseChange.Load(),
		"stores":            s.Stores.Load(),
		"retrieves":         s.Retrieves.Load(),
		"errors":            s.Errors.Load(),
		"sessions":          s.Sessions.Load(),
		"streams":           s.Streams.Load(),
		"timeouts":          s.Timeouts.Load(),
		"drain_refusals":    s.DrainRefusals.Load(),
		"forced_closes":     s.ForcedCloses.Load(),
		"retries":           s.Retries.Load(),
		"ambiguous":         s.Ambiguous.Load(),
	}
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Credential == nil || cfg.Credential.Certificate == nil || cfg.Credential.PrivateKey == nil {
		return nil, errors.New("core: server requires a host credential")
	}
	if cfg.Roots == nil {
		return nil, errors.New("core: server requires trust roots")
	}
	if cfg.AcceptedCredentials == nil {
		cfg.AcceptedCredentials = policy.NewACL()
	}
	if cfg.AuthorizedRetrievers == nil {
		cfg.AuthorizedRetrievers = policy.NewACL()
	}
	if cfg.AuthorizedRenewers == nil {
		cfg.AuthorizedRenewers = policy.NewACL()
	}
	store := cfg.Store
	if store == nil {
		store = credstore.NewMemStore()
	}
	tlsCfg, err := gsi.NewServerTLSConfig(cfg.Credential)
	if err != nil {
		return nil, err
	}
	verifyCache := cfg.VerifyCache
	if verifyCache == nil {
		verifyCache = proxy.NewVerifyCache(0)
	}
	s := &Server{
		cfg:         cfg,
		store:       store,
		tlsCfg:      tlsCfg,
		verifyCache: verifyCache,
		listeners:   make(map[net.Listener]struct{}),
		active:      make(map[net.Conn]struct{}),
		quit:        make(chan struct{}),
	}
	s.isRevoked.Store(cfg.IsRevoked)
	if cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	if cfg.PurgeInterval > 0 {
		go s.sweep(cfg.PurgeInterval)
	}
	if cfg.StatsFile != "" {
		go s.flushStats()
	}
	return s, nil
}

// sweep periodically removes expired credentials (dead weight and residual
// risk on the repository host, paper §5.1).
func (s *Server) sweep(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
			n, err := credstore.PurgeExpired(s.store, s.cfg.now(), false)
			if err != nil {
				s.cfg.logf("purge: %v", err)
				continue
			}
			if n > 0 {
				s.cfg.logf("purged %d expired credential(s)", n)
			}
		}
	}
}

// flushStats periodically persists the counter snapshot for offline
// inspection (myproxy-admin stats); a final flush happens in Close.
func (s *Server) flushStats() {
	interval := s.cfg.StatsFlushInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
			if err := s.stats.WriteFile(s.cfg.StatsFile); err != nil {
				s.cfg.logf("stats flush: %v", err)
			}
		}
	}
}

// Store exposes the backing store (admin tooling, tests).
func (s *Server) Store() credstore.Store { return s.store }

// VerifyCache exposes the chain-verification cache (diagnostics, tests).
func (s *Server) VerifyCache() *proxy.VerifyCache { return s.verifyCache }

// revocationHook returns the current revocation hook (possibly nil).
func (s *Server) revocationHook() func(*x509.Certificate) bool {
	fn, _ := s.isRevoked.Load().(func(*x509.Certificate) bool)
	return fn
}

// SetRevoked atomically replaces the revocation hook — the CRL-reload
// entry point — and invalidates the verification cache so no cached
// verdict predates the new revocation data. The next connection from a
// newly revoked chain is rejected even if its chain was cached or its TLS
// session is resumed.
func (s *Server) SetRevoked(fn func(*x509.Certificate) bool) {
	s.isRevoked.Store(fn)
	s.verifyCache.Invalidate()
}

// Stats exposes the operation counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Identity returns the repository's Grid identity.
func (s *Server) Identity() string { return s.cfg.Credential.Subject() }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close() // refusing the listener; close is best-effort
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		if !s.acquire(raw) {
			continue
		}
		go func() {
			defer s.release()
			s.handleRaw(raw)
		}()
	}
}

// acquire claims a serving slot for raw, blocking while the server is at
// MaxConcurrent (accept backpressure), and registers the session with the
// drain WaitGroup. It refuses — closing raw and counting a drain refusal —
// when the server shuts down first. The WaitGroup Add happens under mu
// against the closed flag, so Close's Wait can never race a late Add.
func (s *Server) acquire(raw net.Conn) bool {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			s.refuse(raw)
			return false
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if s.sem != nil {
			<-s.sem
		}
		s.refuse(raw)
		return false
	}
	s.conns.Add(1)
	s.mu.Unlock()
	return true
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
	s.conns.Done()
}

func (s *Server) refuse(raw net.Conn) {
	s.stats.DrainRefusals.Add(1)
	s.cfg.logf("refused connection from %v: server draining", raw.RemoteAddr())
	_ = raw.Close() // refusing the peer; close is best-effort
}

// track registers an in-flight connection so a drain timeout can cut it off.
func (s *Server) track(raw net.Conn) {
	s.mu.Lock()
	s.active[raw] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(raw net.Conn) {
	s.mu.Lock()
	delete(s.active, raw)
	s.mu.Unlock()
}

// Close stops accepting (new connections are refused), lets in-flight
// sessions drain for up to DrainTimeout (indefinitely when 0), then
// force-closes stragglers. It also stops the purge sweeper and flushes the
// stats file.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	for ln := range s.listeners {
		if err := ln.Close(); err != nil {
			s.cfg.logf("close listener: %v", err)
		}
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.conns.Wait()
		close(drained)
	}()
	if s.cfg.DrainTimeout > 0 {
		timer := time.NewTimer(s.cfg.DrainTimeout)
		defer timer.Stop()
		select {
		case <-drained:
		case <-timer.C:
			s.mu.Lock()
			for raw := range s.active {
				s.stats.ForcedCloses.Add(1)
				s.cfg.logf("drain timeout: force-closing session with %v", raw.RemoteAddr())
				_ = raw.Close() // cutting the session off; close is best-effort
			}
			s.mu.Unlock()
			<-drained
		}
	} else {
		<-drained
	}
	if s.cfg.StatsFile != "" {
		if err := s.stats.WriteFile(s.cfg.StatsFile); err != nil {
			s.cfg.logf("stats flush: %v", err)
		}
	}
	return nil
}

// handleRaw authenticates and serves one client session.
func (s *Server) handleRaw(raw net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.Errors.Add(1)
			s.cfg.logf("panic serving %v: %v", raw.RemoteAddr(), r)
			_ = raw.Close() // session is already broken; close is best-effort
		}
	}()
	s.track(raw)
	defer s.untrack(raw)
	timeout := s.cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	msgTimeout := s.cfg.MessageTimeout
	if msgTimeout <= 0 || msgTimeout > timeout {
		msgTimeout = timeout
	}
	conn, err := gsi.Server(raw, s.cfg.Credential, gsi.AuthOptions{
		Roots:            s.cfg.Roots,
		MaxDepth:         s.cfg.MaxChainDepth,
		IsRevoked:        s.revocationHook(),
		HandshakeTimeout: msgTimeout,
		Cache:            s.verifyCache,
		TLSConfig:        s.tlsCfg,
	})
	if err != nil {
		s.stats.AuthFailures.Add(1)
		s.cfg.logf("authentication failed from %v: %v", raw.RemoteAddr(), err)
		return
	}
	defer conn.Close()
	s.stats.Connections.Add(1)
	// Per-message deadlines inside the session cap (slowloris guard): each
	// message must complete within msgTimeout, the session within timeout.
	conn.SetSessionDeadline(time.Now().Add(timeout))
	conn.SetMessageTimeout(msgTimeout)
	if err := s.serveSession(conn); err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			s.stats.Timeouts.Add(1)
			s.cfg.logf("session with %s evicted: message deadline exceeded", conn.PeerIdentity())
			return
		}
		s.stats.Errors.Add(1)
		s.cfg.logf("session with %s: %v", conn.PeerIdentity(), err)
	}
}

// HandleConn serves one pre-established raw connection synchronously
// (used by tests and the simulation harness). It obeys the same slot and
// drain rules as accepted connections.
func (s *Server) HandleConn(raw net.Conn) {
	if !s.acquire(raw) {
		return
	}
	defer s.release()
	s.handleRaw(raw)
}
