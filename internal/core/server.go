package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/credstore"
	"repro/internal/gsi"
	"repro/internal/policy"
)

// Server is a MyProxy repository server (paper §4).
type Server struct {
	cfg   ServerConfig
	store credstore.Store
	stats Stats

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     sync.WaitGroup
	closed    bool
	quit      chan struct{}
}

// Stats counts repository operations; all fields are updated atomically.
type Stats struct {
	Connections      atomic.Int64
	AuthFailures     atomic.Int64
	Puts             atomic.Int64
	Gets             atomic.Int64
	Infos            atomic.Int64
	Destroys         atomic.Int64
	PassphraseChange atomic.Int64
	Stores           atomic.Int64
	Retrieves        atomic.Int64
	Errors           atomic.Int64
}

// Snapshot returns a plain-value copy for reporting.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"connections":       s.Connections.Load(),
		"auth_failures":     s.AuthFailures.Load(),
		"puts":              s.Puts.Load(),
		"gets":              s.Gets.Load(),
		"infos":             s.Infos.Load(),
		"destroys":          s.Destroys.Load(),
		"passphrase_change": s.PassphraseChange.Load(),
		"stores":            s.Stores.Load(),
		"retrieves":         s.Retrieves.Load(),
		"errors":            s.Errors.Load(),
	}
}

// NewServer validates the configuration and builds a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Credential == nil || cfg.Credential.Certificate == nil || cfg.Credential.PrivateKey == nil {
		return nil, errors.New("core: server requires a host credential")
	}
	if cfg.Roots == nil {
		return nil, errors.New("core: server requires trust roots")
	}
	if cfg.AcceptedCredentials == nil {
		cfg.AcceptedCredentials = policy.NewACL()
	}
	if cfg.AuthorizedRetrievers == nil {
		cfg.AuthorizedRetrievers = policy.NewACL()
	}
	if cfg.AuthorizedRenewers == nil {
		cfg.AuthorizedRenewers = policy.NewACL()
	}
	store := cfg.Store
	if store == nil {
		store = credstore.NewMemStore()
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		listeners: make(map[net.Listener]struct{}),
		quit:      make(chan struct{}),
	}
	if cfg.PurgeInterval > 0 {
		go s.sweep(cfg.PurgeInterval)
	}
	return s, nil
}

// sweep periodically removes expired credentials (dead weight and residual
// risk on the repository host, paper §5.1).
func (s *Server) sweep(interval time.Duration) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-ticker.C:
			n, err := credstore.PurgeExpired(s.store, s.cfg.now(), false)
			if err != nil {
				s.cfg.logf("purge: %v", err)
				continue
			}
			if n > 0 {
				s.cfg.logf("purged %d expired credential(s)", n)
			}
		}
	}
}

// Store exposes the backing store (admin tooling, tests).
func (s *Server) Store() credstore.Store { return s.store }

// Stats exposes the operation counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Identity returns the repository's Grid identity.
func (s *Server) Identity() string { return s.cfg.Credential.Subject() }

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	for {
		raw, err := ln.Accept()
		if err != nil {
			return err
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			s.handleRaw(raw)
		}()
	}
}

// Close stops all listeners, the purge sweeper, and waits for in-flight
// sessions.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	for ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	s.conns.Wait()
	return nil
}

// handleRaw authenticates and serves one client session.
func (s *Server) handleRaw(raw net.Conn) {
	defer func() {
		if r := recover(); r != nil {
			s.stats.Errors.Add(1)
			s.cfg.logf("panic serving %v: %v", raw.RemoteAddr(), r)
			raw.Close()
		}
	}()
	timeout := s.cfg.RequestTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	conn, err := gsi.Server(raw, s.cfg.Credential, gsi.AuthOptions{
		Roots:            s.cfg.Roots,
		MaxDepth:         s.cfg.MaxChainDepth,
		IsRevoked:        s.cfg.IsRevoked,
		HandshakeTimeout: timeout,
	})
	if err != nil {
		s.stats.AuthFailures.Add(1)
		s.cfg.logf("authentication failed from %v: %v", raw.RemoteAddr(), err)
		return
	}
	defer conn.Close()
	s.stats.Connections.Add(1)
	conn.SetDeadline(time.Now().Add(timeout))
	if err := s.serveSession(conn); err != nil {
		s.stats.Errors.Add(1)
		s.cfg.logf("session with %s: %v", conn.PeerIdentity(), err)
	}
}

// HandleConn serves one pre-established raw connection synchronously
// (used by tests and the simulation harness).
func (s *Server) HandleConn(raw net.Conn) {
	s.handleRaw(raw)
}
