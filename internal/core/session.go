package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/gsi"
	"repro/internal/otp"
	"repro/internal/pki"
	"repro/internal/protocol"
)

// Session is a client-side multiplexed session: one authenticated
// connection carrying many pipelined protocol exchanges (the SESSION
// command). A portal that needs N delegations per page load pays one
// TCP+TLS handshake instead of N — the dominant cost in the paper's
// Fig. 2 exchange once key generation is pooled.
//
// Against a server that predates sessions (or has them disabled), the
// hello is answered with an error verdict and NewSession returns a
// degraded Session whose operations transparently fall back to one
// connection per exchange — same results, original cost profile.
type Session struct {
	c *Client
	// conn and mux are nil in a degraded session.
	conn *clientConn
	mux  *gsi.Session
}

// NewSession opens a multiplexed session with the repository. The context
// governs both establishment and the session's lifetime: cancelling it
// aborts in-flight streams. Always Close a non-degraded session; a
// degraded one (Multiplexed() == false) holds no connection but Close is
// safe either way.
func (c *Client) NewSession(ctx context.Context) (*Session, error) {
	conn, err := c.connect(ctx)
	if err != nil {
		return nil, err
	}
	// The hello carries no operation; USERNAME is required by the message
	// format, so the placeholder "-" goes on the wire.
	hello := &protocol.Request{Command: protocol.CmdSession, Username: "-"}
	if _, err := c.roundTrip(conn.Conn, hello, ""); err != nil {
		_ = conn.Close() // single-purpose conn; close is best-effort
		if protocol.IsServerVerdict(err) {
			// "Unsupported command" from a legacy server or "session mode
			// not supported" from a configured refusal: downgrade cleanly.
			return &Session{c: c}, nil
		}
		return nil, err
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	// Streams inherit the per-message budget; the connection-wide absolute
	// deadline connect() armed for a single exchange would cut the session
	// short, so it is lifted — the context (via connect's watchdog) and the
	// server's session cap bound the lifetime instead.
	conn.SetMessageTimeout(timeout)
	mux := gsi.NewClientSession(conn.Conn)
	if err := conn.SetDeadline(time.Time{}); err != nil {
		_ = conn.Close() // already failing; close is best-effort
		return nil, fmt.Errorf("core: lift session deadline: %w", err)
	}
	return &Session{c: c, conn: conn, mux: mux}, nil
}

// Multiplexed reports whether the session actually multiplexes; false
// means the server declined and operations fall back to per-exchange
// connections.
func (s *Session) Multiplexed() bool { return s.mux != nil }

// Close ends the session and its connection.
func (s *Session) Close() error {
	if s.mux == nil {
		return nil
	}
	_ = s.mux.Close() // closes the transport below too
	if err := s.conn.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// Get retrieves a delegated proxy credential over the session (one stream;
// paper Fig. 2 without the handshake). Concurrent Gets pipeline on the one
// connection. On a degraded session this is exactly Client.Get.
func (s *Session) Get(ctx context.Context, opts GetOptions) (*pki.Credential, error) {
	if s.mux == nil {
		return s.c.Get(ctx, opts)
	}
	cred, err := s.getOnce(opts)
	if err == nil {
		return cred, nil
	}
	var otpErr *ErrOTPRequired
	if errors.As(err, &otpErr) && opts.OTPSecret != "" && opts.OTP == "" {
		resp, rerr := otp.Respond(otpErr.Challenge, opts.OTPSecret)
		if rerr != nil {
			return nil, rerr
		}
		opts.OTP = resp
		return s.getOnce(opts)
	}
	return nil, err
}

func (s *Session) getOnce(opts GetOptions) (*pki.Credential, error) {
	st, err := s.mux.Open()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	req := &protocol.Request{
		Command:    protocol.CmdGet,
		Username:   opts.Username,
		Passphrase: opts.Passphrase,
		Lifetime:   opts.Lifetime,
		CredName:   opts.CredName,
		TaskHint:   opts.TaskHint,
		OTP:        opts.OTP,
		Renewal:    opts.Renewal,
	}
	if _, err := s.c.roundTrip(st, req, ""); err != nil {
		return nil, err
	}
	cred, err := gsi.RequestDelegationFrom(st, s.c.KeySource, s.c.keySpec(), s.c.Roots)
	if err != nil {
		return nil, fmt.Errorf("core: receive delegation: %w", err)
	}
	if err := s.c.readFinal(st); err != nil {
		return nil, err
	}
	return cred, nil
}

// GetBatch pipelines one Get per options entry concurrently over the
// session. creds[i] corresponds to opts[i] and is nil where that exchange
// failed; the returned error joins all per-exchange failures.
func (s *Session) GetBatch(ctx context.Context, opts []GetOptions) ([]*pki.Credential, error) {
	creds := make([]*pki.Credential, len(opts))
	errs := make([]error, len(opts))
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cred, err := s.Get(ctx, opts[i])
			creds[i] = cred
			if err != nil {
				errs[i] = fmt.Errorf("get %q/%q: %w", opts[i].Username, opts[i].CredName, err)
			}
		}(i)
	}
	wg.Wait()
	return creds, errors.Join(errs...)
}

// Info lists stored credentials over the session (see Client.Info).
func (s *Session) Info(ctx context.Context, username, passphrase string) ([]protocol.CredInfo, error) {
	if s.mux == nil {
		return s.c.Info(ctx, username, passphrase)
	}
	st, err := s.mux.Open()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	resp, err := s.c.roundTrip(st, &protocol.Request{
		Command: protocol.CmdInfo, Username: username, Passphrase: passphrase,
	}, "")
	if err != nil {
		return nil, err
	}
	return resp.Infos, nil
}
