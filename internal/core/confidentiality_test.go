package core

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"

	"repro/internal/testpki"
)

// recordingConn tees everything written to the network into a buffer, so a
// test can play the paper's eavesdropper (§5.1: "since sensitive
// information is transferred between the MyProxy client programs and the
// server, all data passing to and from the server is encrypted").
type recordingConn struct {
	net.Conn
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (c *recordingConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.buf.Write(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

func (c *recordingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.mu.Lock()
		c.buf.Write(p[:n])
		c.mu.Unlock()
	}
	return n, err
}

func TestWireCarriesNoPlaintextSecrets(t *testing.T) {
	_, addr := startServer(t, nil)
	alice := testpki.User(t, "core-alice")

	var mu sync.Mutex
	var captured bytes.Buffer
	cli := newClient(t, alice, addr)
	cli.DialContext = func(ctx context.Context, network, address string) (net.Conn, error) {
		var d net.Dialer
		raw, err := d.DialContext(ctx, network, address)
		if err != nil {
			return nil, err
		}
		return &recordingConn{Conn: raw, mu: &mu, buf: &captured}, nil
	}

	secretPass := "wire sniff secret passphrase 9731"
	if err := cli.Put(context.Background(), PutOptions{
		Username: "sniffuser", Passphrase: secretPass,
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	wire := captured.Bytes()
	mu.Unlock()
	if len(wire) == 0 {
		t.Fatal("nothing captured")
	}
	// Neither the pass phrase, nor the username, nor a private key may
	// appear in cleartext anywhere in the byte stream.
	for _, secret := range [][]byte{
		[]byte(secretPass),
		[]byte("sniffuser"),
		[]byte("RSA PRIVATE KEY"),
	} {
		if bytes.Contains(wire, secret) {
			t.Errorf("wire contains plaintext %q", secret)
		}
	}
	// Sanity check on the sniffer itself: it does see TLS record bytes.
	if wire[0] != 0x16 { // TLS handshake record type
		t.Errorf("capture does not look like TLS (first byte %#x)", wire[0])
	}
}
