package core

import (
	"context"
	"crypto/x509"
	"testing"
	"time"

	"repro/internal/keypool"
	"repro/internal/pki"
	"repro/internal/testpki"
)

// TestCRLReloadRejectsCachedAndResumedPeer pins the revocation semantics of
// the performance substrate end to end: after a CRL reload (SetRevoked),
// a peer whose chain verification was cached AND whose TLS session can be
// resumed must be rejected on its very first new connection.
func TestCRLReloadRejectsCachedAndResumedPeer(t *testing.T) {
	srv, addr := startServer(t, nil)
	alice := testpki.User(t, "core-revoke-alice")
	cli := newClient(t, alice, addr)
	ctx := context.Background()

	// Two operations on one client: the first primes the server's verify
	// cache and mints a TLS session ticket; the second rides both.
	mustPut(t, cli, PutOptions{Lifetime: 24 * time.Hour})
	mustPut(t, cli, PutOptions{Lifetime: 24 * time.Hour})
	if srv.VerifyCache().Hits() == 0 {
		t.Fatal("second connection did not hit the server verify cache; test premise broken")
	}

	// "CRL reload": alice's end-entity certificate is now revoked.
	serial := alice.Certificate.SerialNumber.String()
	srv.SetRevoked(func(c *x509.Certificate) bool {
		return c.SerialNumber.String() == serial
	})

	if err := cli.Put(ctx, PutOptions{
		Username: testUser, Passphrase: testPass, Lifetime: 24 * time.Hour,
	}); err == nil {
		t.Fatal("revoked peer accepted on first connection after CRL reload")
	}

	// An unrevoked identity still gets in — the reload rejected the revoked
	// chain, not the world.
	bob := testpki.User(t, "core-revoke-bob")
	mustPut(t, newClient(t, bob, addr), PutOptions{Username: "bob", Lifetime: 24 * time.Hour})
}

// TestClientKeySourcePooledDelegation runs Fig. 1 + Fig. 2 with both sides
// drawing keys from pools, and proves pooled keys end up in the delegated
// credentials (the pool serves, the chain still verifies).
func TestClientKeySourcePooledDelegation(t *testing.T) {
	clientPool := keypool.New(4, 1, pki.KeySpec{Bits: 1024})
	defer clientPool.Close()
	serverPool := keypool.New(4, 1, pki.KeySpec{Bits: 1024})
	defer serverPool.Close()

	// Key generation takes tens of milliseconds; wait for at least one warm
	// key per pool so the flows below actually exercise the pooled path.
	waitWarm := func(p *keypool.Pool) {
		t.Helper()
		deadline := time.After(2 * time.Minute)
		for p.Snapshot().Ready == 0 {
			select {
			case <-deadline:
				t.Fatalf("pool never warmed: %+v", p.Snapshot())
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	waitWarm(serverPool)
	waitWarm(clientPool)

	srv, addr := startServer(t, func(cfg *ServerConfig) {
		cfg.KeySource = serverPool
	})
	alice := testpki.User(t, "core-pool-alice")
	userCli := newClient(t, alice, addr)
	userCli.KeySource = clientPool
	mustPut(t, userCli, PutOptions{Lifetime: 24 * time.Hour})

	portal := testpki.Host(t, "portal.test")
	portalCli := newClient(t, portal, addr)
	portalCli.KeySource = clientPool
	cred, err := portalCli.Get(context.Background(), GetOptions{
		Username: testUser, Passphrase: testPass, Lifetime: time.Hour,
	})
	if err != nil {
		t.Fatalf("Get with pooled keys: %v", err)
	}
	if spec, ok := pki.SpecOf(cred.PrivateKey.Public()); !ok || spec.Bits != 1024 {
		t.Fatalf("delegated key spec = %v, want 1024-bit RSA", spec)
	}
	if err := cred.Validate(time.Now()); err != nil {
		t.Fatalf("pooled-key credential invalid: %v", err)
	}
	// PUT consumes a server-pool key (the imported credential's key pair),
	// GET a client-pool key (the CSR the portal sends).
	if serverPool.Snapshot().Hits == 0 {
		t.Error("server PUT path never drew from its pool")
	}
	if clientPool.Snapshot().Hits == 0 {
		t.Error("client GET path never drew from its pool")
	}
	if srv.Stats().Puts.Load() != 1 || srv.Stats().Gets.Load() != 1 {
		t.Errorf("stats = %v", srv.Stats().Snapshot())
	}
}
