package core

import (
	"crypto/x509"
	"net"
	"testing"
)

// x509Pool aliases keep the test helpers compact.
type x509Pool = x509.CertPool

func newX509Pool() *x509Pool { return x509.NewCertPool() }

func listenLoopback(t *testing.T) (net.Listener, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err == nil {
		t.Cleanup(func() { ln.Close() })
	}
	return ln, err
}
