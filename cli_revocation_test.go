package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIRevocation drives the revocation path end to end (paper §2.1):
// grid-ca revokes a user's certificate and publishes a CRL; a repository
// started with that CRL refuses the revoked identity while still serving
// others.
func TestCLIRevocation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full CLI suite")
	}
	bin := builtBinaries(t)
	work := t.TempDir()

	run := func(stdin string, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}
	runExpectFail := func(stdin string, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("%s %v unexpectedly succeeded:\n%s", name, args, out)
		}
		return string(out)
	}

	run("", "grid-ca", "init", "-dir", "ca", "-name", "/C=US/O=Rev Grid/CN=Rev CA", "-bits", "1024")
	run("", "grid-ca", "user", "-dir", "ca", "-cn", "Victim", "-out", "victim.pem", "-bits", "1024")
	run("", "grid-ca", "user", "-dir", "ca", "-cn", "Bystander", "-out", "bystander.pem", "-bits", "1024")
	run("", "grid-ca", "host", "-dir", "ca", "-hostname", "localhost", "-out", "host.pem", "-bits", "1024")

	// Revoke the victim and publish the CRL.
	out := run("", "grid-ca", "revoke", "-dir", "ca", "-cert", "victim.pem")
	if !strings.Contains(out, "revoked serial") {
		t.Fatalf("revoke: %s", out)
	}
	out = run("", "grid-ca", "crl", "-dir", "ca", "-out", "ca.crl")
	if !strings.Contains(out, "1 revocation(s)") {
		t.Fatalf("crl: %s", out)
	}

	mustWrite(t, filepath.Join(work, "accepted"), "/C=US/O=Rev Grid/*\n")
	mustWrite(t, filepath.Join(work, "retrievers"), "/C=US/O=Rev Grid/*\n")

	addr := freeAddr(t)
	server := exec.Command(filepath.Join(bin, "myproxy-server"),
		"-listen", addr,
		"-cred", "host.pem",
		"-ca", filepath.Join("ca", "ca-cert.pem"),
		"-store", "store",
		"-accepted", "accepted",
		"-retrievers", "retrievers",
		"-crl", "ca.crl",
		"-kdf-iter", "1024",
	)
	server.Dir = work
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	waitForListen(t, addr)

	common := []string{"-s", addr, "-ca", filepath.Join("ca", "ca-cert.pem"), "-serverdn", "*/CN=localhost"}

	// The bystander works.
	run("rev pass phrase\nrev pass phrase\n", "myproxy-init",
		append([]string{"-l", "bystander", "-cred", "bystander.pem", "-c", "24"}, common...)...)

	// The revoked victim is refused at authentication.
	errOut := runExpectFail("rev pass phrase\nrev pass phrase\n", "myproxy-init",
		append([]string{"-l", "victim", "-cred", "victim.pem", "-c", "24"}, common...)...)
	// The server rejects the revoked chain after the handshake and drops
	// the connection; depending on timing the client reports a handshake
	// failure, a reset, or an EOF — any connection-level refusal is the
	// expected shape (the precise reason is in the server's audit log).
	lower := strings.ToLower(errOut)
	if !strings.Contains(lower, "handshake") &&
		!strings.Contains(lower, "revoked") &&
		!strings.Contains(lower, "bad certificate") &&
		!strings.Contains(lower, "connection reset") &&
		!strings.Contains(lower, "broken pipe") &&
		!strings.Contains(lower, "eof") {
		t.Fatalf("victim failure lacks a revocation-shaped error:\n%s", errOut)
	}
}
