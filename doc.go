// Package repro is a from-scratch Go reproduction of "An Online Credential
// Repository for the Grid: MyProxy" (Novotny, Tuecke, Welch, HPDC 2001).
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), the command-line tools under cmd/, runnable scenarios under
// examples/, and the per-figure benchmark harness in bench_test.go with
// results recorded in EXPERIMENTS.md.
package repro
