// Command myproxy-init delegates a proxy credential to the MyProxy
// repository under a user identity and pass phrase (paper Fig. 1, §4.1).
// Run it from a machine where your long-term credentials (or a proxy made
// by grid-proxy-init) are available.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
)

func main() {
	fs := flag.NewFlagSet("myproxy-init", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	hours := fs.Float64("c", 7*24, "lifetime of the credential held by the repository, in hours (default one week)")
	credName := fs.String("k", "", "credential name (for multiple credentials per account, paper §6.2)")
	desc := fs.String("desc", "", "credential description")
	retrievers := fs.String("R", "", "DN pattern of clients allowed to retrieve this credential")
	maxDelegHours := fs.Float64("d", 0, "longest proxy lifetime the repository may delegate from this credential, in hours (paper §4.1 restriction; 0 = server policy)")
	tags := fs.String("tags", "", "comma-separated task tags for wallet selection (paper §6.2)")
	renewable := fs.Bool("n", false, "deposit without a pass phrase for renewal by authorized renewers (paper §6.6)")
	fs.Parse(os.Args[1:])

	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-init: -l username is required")
	}
	client, err := cf.BuildClient("credential key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-init: %v", err)
	}
	var pass string
	if !*renewable {
		pass, err = cliutil.PromptNewPassphrase("MyProxy pass phrase")
		if err != nil {
			cliutil.Fatalf("myproxy-init: %v", err)
		}
	}
	var taskTags []string
	if *tags != "" {
		taskTags = strings.Split(*tags, ",")
	}
	err = client.Put(context.Background(), core.PutOptions{
		Username:      *cf.Username,
		Passphrase:    pass,
		Lifetime:      time.Duration(*hours * float64(time.Hour)),
		CredName:      *credName,
		Description:   *desc,
		Retrievers:    *retrievers,
		MaxDelegation: time.Duration(*maxDelegHours * float64(time.Hour)),
		TaskTags:      taskTags,
		Renewable:     *renewable,
	})
	if err != nil {
		cliutil.Fatalf("myproxy-init: %v", err)
	}
	fmt.Printf("A proxy valid for %.0f hours for user %s now exists on %s\n",
		*hours, *cf.Username, *cf.Server)
}
