// Command myproxy-http-gateway serves the repository over HTTPS+JSON — the
// paper's §6.4 "more standard protocols" direction. It can share a store
// directory with myproxy-server so both protocol frontends expose the same
// credentials.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/credstore"
	"repro/internal/httpgate"
	"repro/internal/keypool"
	"repro/internal/pki"
	"repro/internal/policy"
)

func main() {
	listen := flag.String("listen", ":7513", "HTTPS listen address")
	credFile := flag.String("cred", "myproxy-host.pem", "gateway host credential")
	caFile := flag.String("ca", "grid-ca/ca-cert.pem", "trusted CA certificate bundle")
	storeDir := flag.String("store", "myproxy-store", "credential store directory (shareable with myproxy-server)")
	acceptedFile := flag.String("accepted", "", "accepted_credentials ACL file; required")
	retrieversFile := flag.String("retrievers", "", "authorized_retrievers ACL file; required")
	maxDelegHours := flag.Int("max-proxy-hours", 12, "maximum delegated proxy lifetime")
	kdfIter := flag.Int("kdf-iter", pki.DefaultKDFIterations, "PBKDF2 iterations for sealing")
	keypoolSize := flag.Int("keypool", keypool.DefaultSize, "background keypair pool size (0 disables)")
	keyAlg := flag.String("key-alg", "rsa-2048", "key algorithm for server-generated keys (rsa-2048, ecdsa-p256, ed25519)")
	flag.Parse()

	alg, err := pki.ParseKeyAlgorithm(*keyAlg)
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}

	logger := log.New(os.Stderr, "myproxy-http-gateway: ", log.LstdFlags)
	cred, err := cliutil.LoadCredential(*credFile, "host key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
	roots, err := cliutil.LoadRoots(*caFile)
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
	loadACL := func(path, what string) *policy.ACL {
		if path == "" {
			cliutil.Fatalf("myproxy-http-gateway: -%s is required", what)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			cliutil.Fatalf("myproxy-http-gateway: %v", err)
		}
		acl, err := policy.ParseACLFile(data)
		if err != nil {
			cliutil.Fatalf("myproxy-http-gateway: %s: %v", path, err)
		}
		return acl
	}
	store, err := credstore.NewFileStore(*storeDir)
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
	cfg := core.ServerConfig{
		Credential:             cred,
		Roots:                  roots,
		Store:                  store,
		AcceptedCredentials:    loadACL(*acceptedFile, "accepted"),
		AuthorizedRetrievers:   loadACL(*retrieversFile, "retrievers"),
		Lifetimes:              policy.LifetimePolicy{MaxDelegated: time.Duration(*maxDelegHours) * time.Hour},
		DelegationKeyAlgorithm: alg,
		KDFIterations:          *kdfIter,
		Logger:                 logger,
	}
	if *keypoolSize > 0 {
		pool := keypool.New(*keypoolSize, 0, pki.KeySpec{Algorithm: alg})
		defer pool.Close()
		cfg.KeySource = pool
	}
	g, err := httpgate.New(cfg)
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
	logger.Printf("gateway %s serving HTTPS+JSON on %s (store %s)", cred.Subject(), *listen, *storeDir)
	if err := g.Serve(ln); err != nil {
		cliutil.Fatalf("myproxy-http-gateway: %v", err)
	}
}
