// Command portal-server runs the Grid portal of paper §4.3 / Figure 3: a
// web server that authenticates browser users through MyProxy, holds their
// delegated credentials per session, and drives Grid services (GRAM jobs,
// mass storage) on their behalf.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/keypool"
	"repro/internal/pki"
	"repro/internal/portal"
)

func main() {
	listen := flag.String("listen", ":8443", "HTTPS listen address")
	credFile := flag.String("cred", "portal-host.pem", "portal host credential")
	caFile := flag.String("ca", "grid-ca/ca-cert.pem", "trusted CA certificate bundle")
	myproxyAddr := flag.String("myproxy", "localhost:7512", "MyProxy repository address; a comma-separated list selects a replicated cluster")
	myproxyDN := flag.String("myproxydn", "*", "expected repository identity (DN pattern)")
	replication := flag.Int("replication", 0, "cluster replication factor for a multi-node -myproxy list (0 = default)")
	allowUserRepos := flag.Bool("user-repos", false, "let users name an alternate repository at login (paper §4.3)")
	gramAddr := flag.String("gram", "", "GRAM job manager address (optional)")
	mssAddr := flag.String("mss", "", "mass storage address (optional)")
	sessionHours := flag.Float64("session-hours", 8, "maximum web session lifetime")
	proxyHours := flag.Float64("proxy-hours", 2, "delegated proxy lifetime requested at login")
	keypoolSize := flag.Int("keypool", keypool.DefaultSize, "background keypair pool size for login delegations (0 disables)")
	keyAlg := flag.String("key-alg", "rsa-2048", "delegation key algorithm (rsa-2048, ecdsa-p256, ed25519)")
	flag.Parse()

	alg, err := pki.ParseKeyAlgorithm(*keyAlg)
	if err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}

	logger := log.New(os.Stderr, "portal: ", log.LstdFlags)
	cred, err := cliutil.LoadCredential(*credFile, "host key pass phrase")
	if err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}
	roots, err := cliutil.LoadRoots(*caFile)
	if err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}
	cfg := portal.Config{
		Credential:        cred,
		Roots:             roots,
		MyProxyAddr:       *myproxyAddr,
		ExpectedMyProxy:   *myproxyDN,
		ReplicationFactor: *replication,
		AllowUserRepos:    *allowUserRepos,
		GRAMAddr:          *gramAddr,
		MSSAddr:           *mssAddr,
		SessionLifetime:   time.Duration(*sessionHours * float64(time.Hour)),
		ProxyLifetime:     time.Duration(*proxyHours * float64(time.Hour)),
		KeyAlgorithm:      alg,
		Logger:            logger,
	}
	if *keypoolSize > 0 {
		pool := keypool.New(*keypoolSize, 0, pki.KeySpec{Algorithm: alg})
		defer pool.Close()
		cfg.KeySource = pool
	}
	p, err := portal.New(cfg)
	if err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}
	logger.Printf("portal %s serving HTTPS on %s (repository %s)", cred.Subject(), *listen, *myproxyAddr)
	if err := p.Serve(ln); err != nil {
		cliutil.Fatalf("portal-server: %v", err)
	}
}
