// Command mss-server runs the GSI-protected mass storage substrate — the
// paper's §2.4 example of a delegation consumer ("a user's job that needs
// to authenticate as the user to mass storage ... to store the result of a
// long computation").
package main

import (
	"flag"
	"log"
	"net"
	"os"

	"repro/internal/cliutil"
	"repro/internal/gsi"
	"repro/internal/mss"
)

func main() {
	listen := flag.String("listen", ":2811", "listen address (2811 is the GridFTP port)")
	credFile := flag.String("cred", "mss-host.pem", "service host credential")
	caFile := flag.String("ca", "grid-ca/ca-cert.pem", "trusted CA certificate bundle")
	gridmapFile := flag.String("gridmap", "grid-mapfile", "DN-to-account map file")
	maxObject := flag.Int("max-object", 256<<10, "maximum object size in bytes")
	flag.Parse()

	logger := log.New(os.Stderr, "mss: ", log.LstdFlags)
	cred, err := cliutil.LoadCredential(*credFile, "host key pass phrase")
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	roots, err := cliutil.LoadRoots(*caFile)
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	data, err := os.ReadFile(*gridmapFile)
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	gridmap, err := gsi.ParseGridmap(data)
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	srv, err := mss.NewServer(mss.Config{
		Credential:     cred,
		Roots:          roots,
		Gridmap:        gridmap,
		MaxObjectBytes: *maxObject,
	})
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
	logger.Printf("mass storage %s listening on %s", cred.Subject(), *listen)
	if err := srv.Serve(ln); err != nil {
		cliutil.Fatalf("mss-server: %v", err)
	}
}
