// Command myproxy-retrieve downloads a long-term credential deposited with
// myproxy-store and unseals it locally (paper §6.1).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
)

func main() {
	fs := flag.NewFlagSet("myproxy-retrieve", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	credName := fs.String("k", "", "credential name")
	taskHint := fs.String("task", "", "task hint for wallet selection")
	out := fs.String("o", "retrieved-credential.pem", "output file")
	reencrypt := fs.Bool("encrypt", true, "seal the retrieved key on disk with the pass phrase")
	fs.Parse(os.Args[1:])
	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-retrieve: -l username is required")
	}
	client, err := cf.BuildClient("authentication key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-retrieve: %v", err)
	}
	pass, err := cliutil.PromptPassphrase("MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-retrieve: %v", err)
	}
	cred, err := client.Retrieve(context.Background(), core.RetrieveOptions{
		Username:   *cf.Username,
		Passphrase: pass,
		CredName:   *credName,
		TaskHint:   *taskHint,
	})
	if err != nil {
		cliutil.Fatalf("myproxy-retrieve: %v", err)
	}
	var sealWith []byte
	if *reencrypt {
		sealWith = []byte(pass)
	}
	if err := cred.SaveCredential(*out, sealWith); err != nil {
		cliutil.Fatalf("myproxy-retrieve: %v", err)
	}
	fmt.Printf("Credential %s retrieved to %s\n", cred.Subject(), *out)
}
