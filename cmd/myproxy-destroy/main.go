// Command myproxy-destroy removes credentials from the repository
// (paper §4.1: "The user can also, at any point, use the myproxy-destroy
// client program to destroy any credentials they previously delegated").
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
)

func main() {
	fs := flag.NewFlagSet("myproxy-destroy", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	credName := fs.String("k", "", "credential name")
	fs.Parse(os.Args[1:])
	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-destroy: -l username is required")
	}
	client, err := cf.BuildClient("credential key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-destroy: %v", err)
	}
	pass, err := cliutil.PromptPassphrase("MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-destroy: %v", err)
	}
	if err := client.Destroy(context.Background(), *cf.Username, pass, *credName); err != nil {
		cliutil.Fatalf("myproxy-destroy: %v", err)
	}
	fmt.Printf("MyProxy credential for user %s was successfully removed\n", *cf.Username)
}
