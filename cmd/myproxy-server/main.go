// Command myproxy-server runs the MyProxy online credential repository
// (paper §4): it accepts delegated credentials from users, holds them
// sealed under the user's pass phrase, and delegates short-lived proxies
// back to authorized clients such as Grid portals.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/credstore"
	"repro/internal/keypool"
	"repro/internal/pki"
	"repro/internal/policy"
	"repro/internal/proxy"
)

func main() {
	listen := flag.String("listen", ":7512", "listen address (7512 is the MyProxy port)")
	credFile := flag.String("cred", "myproxy-host.pem", "repository host credential")
	caFile := flag.String("ca", "grid-ca/ca-cert.pem", "trusted CA certificate bundle")
	storeDir := flag.String("store", "myproxy-store", "credential store directory")
	backendSpec := flag.String("backend", "", "storage backend spec (\"mem\" or \"file:<dir>\"); overrides -store")
	acceptedFile := flag.String("accepted", "", "accepted_credentials ACL file (who may deposit); required")
	retrieversFile := flag.String("retrievers", "", "authorized_retrievers ACL file (who may retrieve); required")
	renewersFile := flag.String("renewers", "", "authorized_renewers ACL file (who may renew); optional")
	maxStoredHours := flag.Int("max-cred-hours", 168, "maximum stored credential lifetime (default one week, paper §4.3)")
	maxDelegHours := flag.Int("max-proxy-hours", 12, "maximum delegated proxy lifetime")
	minPass := flag.Int("min-passphrase", policy.DefaultMinPassphraseLength, "minimum pass phrase length")
	kdfIter := flag.Int("kdf-iter", pki.DefaultKDFIterations, "PBKDF2 iterations for sealing stored keys")
	legacyProxies := flag.Bool("legacy-proxies", false, "delegate legacy (CN=proxy) style proxies instead of RFC 3820")
	crlFile := flag.String("crl", "", "PEM CRL bundle; listed certificates are refused (optional)")
	maxConns := flag.Int("max-conns", 0, "maximum concurrent sessions (0 = unlimited)")
	msgTimeout := flag.Duration("message-timeout", 0, "per-message I/O deadline, evicts stalled peers (0 = session timeout)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight sessions on shutdown (0 = wait forever)")
	statsFile := flag.String("stats-file", "", "stats snapshot file for myproxy-admin stats (default <store>/server.stats)")
	keypoolSize := flag.Int("keypool", keypool.DefaultSize, "background keypair pool size for deposits (0 disables)")
	keyAlg := flag.String("key-alg", "rsa-2048", "key algorithm for server-generated deposit keys (rsa-2048, ecdsa-p256, ed25519)")
	sessionTimeout := flag.Duration("session-timeout", 0, "multiplexed session lifetime cap (0 = 5m)")
	noSessions := flag.Bool("no-sessions", false, "refuse multiplexed SESSION requests (legacy one-exchange mode)")
	flag.Parse()

	alg, err := pki.ParseKeyAlgorithm(*keyAlg)
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}

	logger := log.New(os.Stderr, "myproxy-server: ", log.LstdFlags)

	cred, err := cliutil.LoadCredential(*credFile, "host key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}
	caCerts, roots, err := cliutil.LoadRootCerts(*caFile)
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}
	loadACL := func(path, what string, required bool) *policy.ACL {
		if path == "" {
			if required {
				cliutil.Fatalf("myproxy-server: -%s is required (the repository is deny-by-default, paper §5.1)", what)
			}
			return policy.NewACL()
		}
		data, err := os.ReadFile(path)
		if err != nil {
			cliutil.Fatalf("myproxy-server: %v", err)
		}
		acl, err := policy.ParseACLFile(data)
		if err != nil {
			cliutil.Fatalf("myproxy-server: %s: %v", path, err)
		}
		return acl
	}
	accepted := loadACL(*acceptedFile, "accepted", true)
	retrievers := loadACL(*retrieversFile, "retrievers", true)
	renewers := loadACL(*renewersFile, "renewers", false)

	// -backend selects any registered storage engine through the backend
	// registry; the default remains a file store rooted at -store.
	spec := *backendSpec
	if spec == "" {
		spec = "file:" + *storeDir
	}
	store, err := credstore.Open(spec)
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}

	cfg := core.ServerConfig{
		Credential:           cred,
		Roots:                roots,
		Store:                store,
		AcceptedCredentials:  accepted,
		AuthorizedRetrievers: retrievers,
		AuthorizedRenewers:   renewers,
		Passphrase:           policy.PassphrasePolicy{MinLength: *minPass},
		Lifetimes: policy.LifetimePolicy{
			MaxStored:    time.Duration(*maxStoredHours) * time.Hour,
			MaxDelegated: time.Duration(*maxDelegHours) * time.Hour,
		},
		KDFIterations:          *kdfIter,
		Logger:                 logger,
		MaxConcurrent:          *maxConns,
		MessageTimeout:         *msgTimeout,
		DrainTimeout:           *drainTimeout,
		StatsFile:              *statsFile,
		DelegationKeyAlgorithm: alg,
		SessionTimeout:         *sessionTimeout,
		DisableSessions:        *noSessions,
	}
	if cfg.StatsFile == "" {
		// Note: not a .json name — the store treats every *.json in its
		// directory as a credential entry.
		cfg.StatsFile = filepath.Join(*storeDir, "server.stats")
	}
	if *legacyProxies {
		cfg.DelegationProxyType = proxy.Legacy
	}
	if *keypoolSize > 0 {
		pool := keypool.New(*keypoolSize, 0, pki.KeySpec{Algorithm: alg})
		defer pool.Close()
		cfg.KeySource = pool
	}
	if *crlFile != "" {
		crls, err := pki.LoadCRLs(*crlFile)
		if err != nil {
			cliutil.Fatalf("myproxy-server: %v", err)
		}
		checker, err := pki.NewRevocationChecker(crls, caCerts, time.Now())
		if err != nil {
			cliutil.Fatalf("myproxy-server: %v", err)
		}
		cfg.IsRevoked = checker.IsRevoked
		logger.Printf("loaded CRL bundle %s (%d revocation(s))", *crlFile, checker.Count())
	}
	srv, err := core.NewServer(cfg)
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}
	// SIGINT/SIGTERM trigger a graceful drain: stop accepting, let
	// in-flight delegations finish (bounded by -drain-timeout), flush stats.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Printf("received %v, draining", s)
		srv.Close()
	}()

	logger.Printf("repository %s listening on %s (store %s)", srv.Identity(), *listen, *storeDir)
	err = srv.ListenAndServe(*listen)
	if errors.Is(err, net.ErrClosed) {
		logger.Printf("drained, exiting")
		return
	}
	if err != nil {
		cliutil.Fatalf("myproxy-server: %v", err)
	}
}
