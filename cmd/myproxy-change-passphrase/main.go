// Command myproxy-change-passphrase re-seals a stored credential under a
// new pass phrase.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
)

func main() {
	fs := flag.NewFlagSet("myproxy-change-passphrase", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	credName := fs.String("k", "", "credential name")
	fs.Parse(os.Args[1:])
	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-change-passphrase: -l username is required")
	}
	client, err := cf.BuildClient("credential key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-change-passphrase: %v", err)
	}
	oldPass, err := cliutil.PromptPassphrase("current MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-change-passphrase: %v", err)
	}
	newPass, err := cliutil.PromptNewPassphrase("new MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-change-passphrase: %v", err)
	}
	if err := client.ChangePassphrase(context.Background(), *cf.Username, oldPass, newPass, *credName); err != nil {
		cliutil.Fatalf("myproxy-change-passphrase: %v", err)
	}
	fmt.Println("Pass phrase changed")
}
