package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

func TestSelectPassesDefault(t *testing.T) {
	passes, err := selectPasses("")
	if err != nil {
		t.Fatalf("selectPasses(\"\"): %v", err)
	}
	if len(passes) != len(analysis.Passes) {
		t.Fatalf("empty filter selected %d passes, want the full registry (%d)",
			len(passes), len(analysis.Passes))
	}
}

func TestSelectPassesFilter(t *testing.T) {
	passes, err := selectPasses("secretescape, hotalloc,hotblock,hotalloc")
	if err != nil {
		t.Fatalf("selectPasses: %v", err)
	}
	var names []string
	for _, p := range passes {
		names = append(names, p.Name)
	}
	// Whitespace is trimmed and duplicates collapse; order is the caller's.
	if got := strings.Join(names, ","); got != "secretescape,hotalloc,hotblock" {
		t.Fatalf("selected %q, want secretescape,hotalloc,hotblock", got)
	}
}

func TestSelectPassesUnknown(t *testing.T) {
	if _, err := selectPasses("hotalloc,nosuchpass"); err == nil {
		t.Fatal("unknown pass name should error")
	} else if !strings.Contains(err.Error(), "nosuchpass") {
		t.Fatalf("error should name the bad pass: %v", err)
	}
}

// TestPassFilterScopesRun pins the behavioral contract of -pass: a filtered
// run reports only the named passes' findings. The hotalloc fixture trips
// hotalloc (five sites) but nothing from, say, weakrand.
func TestPassFilterScopesRun(t *testing.T) {
	passes, err := selectPasses("weakrand")
	if err != nil {
		t.Fatalf("selectPasses: %v", err)
	}
	rep, err := analysis.Run([]string{"repro/internal/analysis/testdata/src/hotalloc"}, passes)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range rep.Findings {
		if d.Pass != "weakrand" && d.Pass != "pragma" {
			t.Errorf("filtered run leaked a %s finding: %s", d.Pass, d)
		}
	}
}

// TestBudgetFileAbsorbs pins the -budget plumbing: a finding whose
// "file: pass: message" key is recorded in a budget file is absorbed and
// the remaining findings survive.
func TestBudgetFileAbsorbs(t *testing.T) {
	rep := &analysis.Report{Findings: []analysis.Diagnostic{
		{File: "a/b.go", Pass: "hotalloc", Message: "grandfathered site"},
		{File: "a/b.go", Pass: "hotalloc", Message: "new site"},
	}}
	dir := t.TempDir()
	budget := filepath.Join(dir, "budget.txt")
	if err := os.WriteFile(budget, []byte("a/b.go: hotalloc: grandfathered site\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	absorbed, err := applyBaseline(budget, rep, map[string]bool{"a/b.go": true})
	if err != nil {
		t.Fatalf("applyBaseline: %v", err)
	}
	if absorbed != 1 {
		t.Fatalf("absorbed %d findings, want 1", absorbed)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Message != "new site" {
		t.Fatalf("surviving findings = %+v, want only the new site", rep.Findings)
	}
}
