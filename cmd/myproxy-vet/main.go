// Command myproxy-vet runs the repository's static-analysis suite
// (internal/analysis): security and correctness invariants — crypto-grade
// randomness, secrets kept out of format strings, constant-time
// comparisons, proxy-aware chain verification, %w error wrapping — checked
// mechanically over any package pattern.
//
// Usage:
//
//	myproxy-vet [-json | -sarif] [-stats] [-pass names] [-baseline file] [-budget file] [patterns ...]
//
// Patterns default to ./.... Exit status is 0 when clean, 1 when findings
// were reported, 2 on load or usage errors. Findings are suppressed at a
// specific site with //myproxy:allow <pass> <reason>; see DESIGN.md
// ("Static-analysis gate"). -json emits the findings as a JSON object;
// -sarif emits a SARIF 2.1.0 log for CI annotation upload. -pass
// name[,name...] restricts the run to the named passes (see -passes for
// the registry) — the fast loop when developing or deburring one pass.
//
// For adopting a new pass over a codebase with existing findings,
// -write-baseline records the current findings as "file: pass: message"
// keys (no line numbers, so unrelated edits do not churn the file) and
// -baseline filters any finding whose key appears in such a file: only
// NEW findings fail the gate while the recorded debt is burned down.
// Entries whose finding no longer fires in a file the run analyzed are
// stale: -baseline prunes them from the file and prints each one, so the
// baseline ratchets monotonically toward empty. -budget names a second
// file with the same format and pruning, kept separate on principle: the
// baseline is debt being burned down, the budget (vet-cost-budget.txt)
// is the grandfathered allocation profile of the hot path — cost-pass
// findings recorded there are tolerated, anything new fails the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for CI annotation upload)")
	listPasses := flag.Bool("passes", false, "list the registered passes and exit")
	stats := flag.Bool("stats", false, "emit per-pass wall-time and finding-count JSON to stderr")
	baselineFile := flag.String("baseline", "", "suppress findings recorded in this baseline file; stale entries are pruned")
	budgetFile := flag.String("budget", "", "additionally suppress findings recorded in this budget file (hot-path cost grandfathering, same format); stale entries are pruned")
	writeBaseline := flag.String("write-baseline", "", "record current findings to a baseline file and exit clean")
	passFilter := flag.String("pass", "", "run only the named passes, comma-separated (see -passes for the registry)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: myproxy-vet [-json | -sarif] [-pass name[,name...]] [-baseline file [-budget file] | -write-baseline file] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintf(os.Stderr, "myproxy-vet: -json and -sarif are mutually exclusive\n")
		os.Exit(2)
	}

	if *listPasses {
		for _, p := range analysis.Passes {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		fmt.Printf("\nRun a subset with -pass name[,name...].\n")
		return
	}

	passes, err := selectPasses(*passFilter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rep, err := analysis.Run(patterns, passes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for i := range rep.Findings {
		rep.Findings[i].File = relativize(cwd, rep.Findings[i].File)
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, rep.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "myproxy-vet: recorded %d finding(s) in %s\n", len(rep.Findings), *writeBaseline)
		return
	}

	analyzed := make(map[string]bool, len(rep.Files))
	for _, f := range rep.Files {
		analyzed[filepath.ToSlash(relativize(cwd, f))] = true
	}
	baselined, budgeted := 0, 0
	if *baselineFile != "" {
		if baselined, err = applyBaseline(*baselineFile, rep, analyzed); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	}
	if *budgetFile != "" {
		if budgeted, err = applyBaseline(*budgetFile, rep, analyzed); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	}

	if *sarifOut {
		out, err := analysis.SARIF(rep.Findings, analysis.Passes)
		if err == nil {
			_, err = os.Stdout.Write(append(out, '\n'))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed int                   `json:"suppressed"`
			// Stats carries the same per-pass wall-time and finding-count
			// data as -stats, so one -json artifact feeds both the CI
			// annotation step and the pass-cost trend tracking.
			Stats []analysis.PassStat `json:"stats"`
		}{Findings: rep.Findings, Suppressed: len(rep.Suppressed), Stats: rep.PassStats}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Pass, d.Message)
		}
		if len(rep.Findings) > 0 || baselined > 0 || budgeted > 0 {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %d finding(s), %d suppressed by pragma, %d baselined, %d budgeted\n",
				len(rep.Findings), len(rep.Suppressed), baselined, budgeted)
		}
	}
	if *stats {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.PassStats); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// selectPasses resolves a -pass filter against the registry; an empty
// filter selects everything.
func selectPasses(filter string) ([]*analysis.Pass, error) {
	if filter == "" {
		return analysis.Passes, nil
	}
	byName := make(map[string]*analysis.Pass, len(analysis.Passes))
	for _, p := range analysis.Passes {
		byName[p.Name] = p
	}
	var out []*analysis.Pass
	seen := make(map[string]bool)
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("-pass: unknown pass %q (run -passes for the registry)", name)
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, p)
		}
	}
	return out, nil
}

// applyBaseline filters rep.Findings through one baseline-format file,
// prunes its stale entries, and reports how many findings it absorbed.
func applyBaseline(path string, rep *analysis.Report, analyzed map[string]bool) (int, error) {
	known, err := loadBaseline(path)
	if err != nil {
		return 0, err
	}
	matched := make(map[string]bool)
	absorbed := 0
	kept := rep.Findings[:0]
	for _, d := range rep.Findings {
		if k := baselineKey(d); known[k] {
			absorbed++
			matched[k] = true
		} else {
			kept = append(kept, d)
		}
	}
	rep.Findings = kept
	pruned, err := pruneBaseline(path, known, matched, analyzed)
	if err != nil {
		return 0, err
	}
	for _, k := range pruned {
		fmt.Fprintf(os.Stderr, "myproxy-vet: %s entry fixed, pruned: %s\n", filepath.Base(path), k)
	}
	return absorbed, nil
}

// baselineKey identifies a finding across edits: file, pass, and message,
// but no line/column, so moving code does not churn the baseline.
func baselineKey(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", filepath.ToSlash(d.File), d.Pass, d.Message)
}

// saveBaseline writes the findings' keys, sorted and deduplicated, with a
// small header documenting the format.
func saveBaseline(path string, ds []analysis.Diagnostic) error {
	seen := make(map[string]bool)
	var keys []string
	for _, d := range ds {
		k := baselineKey(d)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# myproxy-vet baseline: known findings tolerated by -baseline.\n")
	b.WriteString("# One \"file: pass: message\" key per line; '#' starts a comment.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// pruneBaseline rewrites the baseline without entries that no longer fire:
// a key is stale when no finding in this run matched it AND its file was
// actually analyzed — absence of a finding in a file outside the run's
// patterns means "not checked", not "fixed", and such entries are kept.
// Returns the pruned keys, sorted; the file is rewritten only when at least
// one entry was pruned.
func pruneBaseline(path string, known, matched, analyzed map[string]bool) ([]string, error) {
	var pruned, remaining []string
	for k := range known {
		file, _, ok := strings.Cut(k, ": ")
		if !matched[k] && ok && analyzed[file] {
			pruned = append(pruned, k)
		} else {
			remaining = append(remaining, k)
		}
	}
	if len(pruned) == 0 {
		return nil, nil
	}
	sort.Strings(pruned)
	sort.Strings(remaining)
	var b strings.Builder
	b.WriteString("# myproxy-vet baseline: known findings tolerated by -baseline.\n")
	b.WriteString("# One \"file: pass: message\" key per line; '#' starts a comment.\n")
	for _, k := range remaining {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	return pruned, nil
}

// loadBaseline reads a baseline file into a key set.
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		known[line] = true
	}
	if err := sc.Err(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return known, f.Close()
}

// relativize shortens abs to a cwd-relative path when that is tidier.
func relativize(cwd, path string) string {
	if cwd == "" {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
