// Command myproxy-vet runs the repository's static-analysis suite
// (internal/analysis): security and correctness invariants — crypto-grade
// randomness, secrets kept out of format strings, constant-time
// comparisons, proxy-aware chain verification, %w error wrapping — checked
// mechanically over any package pattern.
//
// Usage:
//
//	myproxy-vet [-json] [patterns ...]
//
// Patterns default to ./.... Exit status is 0 when clean, 1 when findings
// were reported, 2 on load or usage errors. Findings are suppressed at a
// specific site with //myproxy:allow <pass> <reason>; see DESIGN.md
// ("Static-analysis gate").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	listPasses := flag.Bool("passes", false, "list the registered passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: myproxy-vet [-json] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listPasses {
		for _, p := range analysis.Passes {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rep, err := analysis.Run(patterns, analysis.Passes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for i := range rep.Findings {
		rep.Findings[i].File = relativize(cwd, rep.Findings[i].File)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed int                   `json:"suppressed"`
		}{Findings: rep.Findings, Suppressed: len(rep.Suppressed)}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Pass, d.Message)
		}
		if len(rep.Findings) > 0 {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %d finding(s), %d suppressed by pragma\n",
				len(rep.Findings), len(rep.Suppressed))
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// relativize shortens abs to a cwd-relative path when that is tidier.
func relativize(cwd, path string) string {
	if cwd == "" {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
