// Command myproxy-vet runs the repository's static-analysis suite
// (internal/analysis): security and correctness invariants — crypto-grade
// randomness, secrets kept out of format strings, constant-time
// comparisons, proxy-aware chain verification, %w error wrapping — checked
// mechanically over any package pattern.
//
// Usage:
//
//	myproxy-vet [-json | -sarif] [-stats] [-baseline file] [patterns ...]
//
// Patterns default to ./.... Exit status is 0 when clean, 1 when findings
// were reported, 2 on load or usage errors. Findings are suppressed at a
// specific site with //myproxy:allow <pass> <reason>; see DESIGN.md
// ("Static-analysis gate"). -json emits the findings as a JSON object;
// -sarif emits a SARIF 2.1.0 log for CI annotation upload.
//
// For adopting a new pass over a codebase with existing findings,
// -write-baseline records the current findings as "file: pass: message"
// keys (no line numbers, so unrelated edits do not churn the file) and
// -baseline filters any finding whose key appears in such a file: only
// NEW findings fail the gate while the recorded debt is burned down.
// Entries whose finding no longer fires in a file the run analyzed are
// stale: -baseline prunes them from the file and prints each one, so the
// baseline ratchets monotonically toward empty.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (for CI annotation upload)")
	listPasses := flag.Bool("passes", false, "list the registered passes and exit")
	stats := flag.Bool("stats", false, "emit per-pass wall-time and finding-count JSON to stderr")
	baselineFile := flag.String("baseline", "", "suppress findings recorded in this baseline file; stale entries are pruned")
	writeBaseline := flag.String("write-baseline", "", "record current findings to a baseline file and exit clean")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: myproxy-vet [-json | -sarif] [-baseline file | -write-baseline file] [patterns ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintf(os.Stderr, "myproxy-vet: -json and -sarif are mutually exclusive\n")
		os.Exit(2)
	}

	if *listPasses {
		for _, p := range analysis.Passes {
			fmt.Printf("%-12s %s\n", p.Name, p.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	rep, err := analysis.Run(patterns, analysis.Passes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for i := range rep.Findings {
		rep.Findings[i].File = relativize(cwd, rep.Findings[i].File)
	}

	if *writeBaseline != "" {
		if err := saveBaseline(*writeBaseline, rep.Findings); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "myproxy-vet: recorded %d finding(s) in %s\n", len(rep.Findings), *writeBaseline)
		return
	}

	baselined := 0
	if *baselineFile != "" {
		known, err := loadBaseline(*baselineFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
		matched := make(map[string]bool)
		kept := rep.Findings[:0]
		for _, d := range rep.Findings {
			if k := baselineKey(d); known[k] {
				baselined++
				matched[k] = true
			} else {
				kept = append(kept, d)
			}
		}
		rep.Findings = kept

		analyzed := make(map[string]bool, len(rep.Files))
		for _, f := range rep.Files {
			analyzed[filepath.ToSlash(relativize(cwd, f))] = true
		}
		pruned, err := pruneBaseline(*baselineFile, known, matched, analyzed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
		for _, k := range pruned {
			fmt.Fprintf(os.Stderr, "myproxy-vet: baseline entry fixed, pruned: %s\n", k)
		}
	}

	if *sarifOut {
		out, err := analysis.SARIF(rep.Findings, analysis.Passes)
		if err == nil {
			_, err = os.Stdout.Write(append(out, '\n'))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	} else if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		out := struct {
			Findings   []analysis.Diagnostic `json:"findings"`
			Suppressed int                   `json:"suppressed"`
		}{Findings: rep.Findings, Suppressed: len(rep.Suppressed)}
		if out.Findings == nil {
			out.Findings = []analysis.Diagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range rep.Findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Pass, d.Message)
		}
		if len(rep.Findings) > 0 || baselined > 0 {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %d finding(s), %d suppressed by pragma, %d baselined\n",
				len(rep.Findings), len(rep.Suppressed), baselined)
		}
	}
	if *stats {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep.PassStats); err != nil {
			fmt.Fprintf(os.Stderr, "myproxy-vet: %v\n", err)
			os.Exit(2)
		}
	}
	if len(rep.Findings) > 0 {
		os.Exit(1)
	}
}

// baselineKey identifies a finding across edits: file, pass, and message,
// but no line/column, so moving code does not churn the baseline.
func baselineKey(d analysis.Diagnostic) string {
	return fmt.Sprintf("%s: %s: %s", filepath.ToSlash(d.File), d.Pass, d.Message)
}

// saveBaseline writes the findings' keys, sorted and deduplicated, with a
// small header documenting the format.
func saveBaseline(path string, ds []analysis.Diagnostic) error {
	seen := make(map[string]bool)
	var keys []string
	for _, d := range ds {
		k := baselineKey(d)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# myproxy-vet baseline: known findings tolerated by -baseline.\n")
	b.WriteString("# One \"file: pass: message\" key per line; '#' starts a comment.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// pruneBaseline rewrites the baseline without entries that no longer fire:
// a key is stale when no finding in this run matched it AND its file was
// actually analyzed — absence of a finding in a file outside the run's
// patterns means "not checked", not "fixed", and such entries are kept.
// Returns the pruned keys, sorted; the file is rewritten only when at least
// one entry was pruned.
func pruneBaseline(path string, known, matched, analyzed map[string]bool) ([]string, error) {
	var pruned, remaining []string
	for k := range known {
		file, _, ok := strings.Cut(k, ": ")
		if !matched[k] && ok && analyzed[file] {
			pruned = append(pruned, k)
		} else {
			remaining = append(remaining, k)
		}
	}
	if len(pruned) == 0 {
		return nil, nil
	}
	sort.Strings(pruned)
	sort.Strings(remaining)
	var b strings.Builder
	b.WriteString("# myproxy-vet baseline: known findings tolerated by -baseline.\n")
	b.WriteString("# One \"file: pass: message\" key per line; '#' starts a comment.\n")
	for _, k := range remaining {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	return pruned, nil
}

// loadBaseline reads a baseline file into a key set.
func loadBaseline(path string) (map[string]bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		known[line] = true
	}
	if err := sc.Err(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return known, f.Close()
}

// relativize shortens abs to a cwd-relative path when that is tidier.
func relativize(cwd, path string) string {
	if cwd == "" {
		return path
	}
	rel, err := filepath.Rel(cwd, path)
	if err != nil || len(rel) >= len(path) {
		return path
	}
	return rel
}
