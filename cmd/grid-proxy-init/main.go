// Command grid-proxy-init creates a short-term proxy credential from the
// user's long-term credential, exactly as the paper's §2.5 describes: "a
// typical session with GSI would involve the user using their pass phrase
// and a GSI tool called grid-proxy-init to create a proxy credential from
// their long-term credential."
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cliutil"
	"repro/internal/pki"
	"repro/internal/proxy"
)

func main() {
	cert := flag.String("cert", cliutil.DefaultUserCertPath(), "user certificate file")
	key := flag.String("key", cliutil.DefaultUserKeyPath(), "user private key file")
	credFile := flag.String("cred", "", "combined credential file (overrides -cert/-key)")
	out := flag.String("out", cliutil.DefaultProxyPath(), "output proxy file")
	hours := flag.Float64("hours", 12, "proxy lifetime in hours")
	bits := flag.Int("bits", pki.DefaultKeyBits, "proxy key size (RSA only)")
	keyAlg := flag.String("key-alg", "rsa-2048", "proxy key algorithm (rsa-2048, ecdsa-p256, ed25519)")
	limited := flag.Bool("limited", false, "create a limited proxy")
	legacy := flag.Bool("legacy", false, "create a legacy (CN=proxy) style proxy instead of RFC 3820")
	pathLen := flag.Int("pathlen", -1, "RFC 3820 path length constraint (-1 = unlimited)")
	flag.Parse()

	alg, err := pki.ParseKeyAlgorithm(*keyAlg)
	if err != nil {
		cliutil.Fatalf("grid-proxy-init: %v", err)
	}

	var cred *pki.Credential
	if *credFile != "" {
		cred, err = cliutil.LoadCredential(*credFile, "key pass phrase")
	} else {
		cred, err = cliutil.LoadCertKey(*cert, *key, "key pass phrase")
	}
	if err != nil {
		cliutil.Fatalf("grid-proxy-init: %v", err)
	}

	opts := proxy.Options{
		Lifetime:     time.Duration(*hours * float64(time.Hour)),
		KeyAlgorithm: alg,
		KeyBits:      *bits,
	}
	switch {
	case *legacy && *limited:
		opts.Type = proxy.LegacyLimited
	case *legacy:
		opts.Type = proxy.Legacy
	case *limited:
		opts.Type = proxy.RFC3820Limited
	default:
		opts.Type = proxy.RFC3820
	}
	if *pathLen >= 0 {
		opts.PathLenConstraint = proxy.PathLen(*pathLen)
	}

	p, err := proxy.New(cred, opts)
	if err != nil {
		cliutil.Fatalf("grid-proxy-init: %v", err)
	}
	if err := p.SaveCredential(*out, nil); err != nil {
		cliutil.Fatalf("grid-proxy-init: %v", err)
	}
	fmt.Printf("Your proxy %s is valid until %s\n  identity: %s\n  file:     %s\n",
		opts.Type, p.Certificate.NotAfter.Local().Format(time.RFC1123), cred.Subject(), *out)
}
