// Command myproxy-get-delegation retrieves a short-lived delegated proxy
// from the MyProxy repository using the user identity and pass phrase
// (paper Fig. 2, §4.2). Portals run the equivalent library call on behalf
// of browser users (§4.3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/otp"
)

func main() {
	fs := flag.NewFlagSet("myproxy-get-delegation", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	hours := fs.Float64("t", 2, "lifetime of the delegated proxy in hours (paper §4.3: 'a few hours')")
	out := fs.String("o", cliutil.DefaultProxyPath(), "output proxy file")
	credName := fs.String("k", "", "credential name")
	taskHint := fs.String("task", "", "task hint for wallet selection (paper §6.2)")
	renewal := fs.Bool("renewal", false, "renew: authenticate with the expiring proxy instead of a pass phrase (paper §6.6)")
	fs.Parse(os.Args[1:])

	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-get-delegation: -l username is required")
	}
	client, err := cf.BuildClient("credential key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-get-delegation: %v", err)
	}
	opts := core.GetOptions{
		Username: *cf.Username,
		Lifetime: time.Duration(*hours * float64(time.Hour)),
		CredName: *credName,
		TaskHint: *taskHint,
		Renewal:  *renewal,
	}
	if !*renewal {
		pass, err := cliutil.PromptPassphrase("MyProxy pass phrase")
		if err != nil {
			cliutil.Fatalf("myproxy-get-delegation: %v", err)
		}
		opts.Passphrase = pass
	}
	cred, err := client.Get(context.Background(), opts)
	var otpErr *core.ErrOTPRequired
	if errors.As(err, &otpErr) {
		// The server demands a one-time password (paper §6.3): show the
		// challenge and read the response.
		fmt.Fprintf(os.Stderr, "server challenge: %s\n", otpErr.Challenge)
		resp, perr := cliutil.PromptPassphrase("one-time password (16 hex digits), or OTP secret to compute it")
		if perr != nil {
			cliutil.Fatalf("myproxy-get-delegation: %v", perr)
		}
		// Accept either a precomputed response or the secret itself.
		opts.OTP = resp
		if len(resp) != 16 {
			computed, cerr := otp.Respond(otpErr.Challenge, resp)
			if cerr == nil {
				opts.OTP = computed
			}
		}
		cred, err = client.Get(context.Background(), opts)
	}
	if err != nil {
		cliutil.Fatalf("myproxy-get-delegation: %v", err)
	}
	if err := cred.SaveCredential(*out, nil); err != nil {
		cliutil.Fatalf("myproxy-get-delegation: %v", err)
	}
	fmt.Printf("A proxy has been received for user %s in %s, valid until %s\n",
		*cf.Username, *out, cred.Certificate.NotAfter.Local().Format(time.RFC1123))
}
