package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/pki"
)

// Revocation state persists across grid-ca invocations in revoked.json
// inside the CA directory; `grid-ca crl` signs it into a distributable CRL
// (paper §2.1: stolen credentials are "revoked by the CA").

type revocationFile struct {
	Revoked map[string]time.Time `json:"revoked"` // serial (decimal) -> time
}

func revocationPath(dir string) string { return filepath.Join(dir, "revoked.json") }

func loadRevocations(dir string) (*revocationFile, error) {
	rf := &revocationFile{Revoked: make(map[string]time.Time)}
	data, err := os.ReadFile(revocationPath(dir))
	if os.IsNotExist(err) {
		return rf, nil
	}
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(data, rf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", revocationPath(dir), err)
	}
	if rf.Revoked == nil {
		rf.Revoked = make(map[string]time.Time)
	}
	return rf, nil
}

func (rf *revocationFile) save(dir string) error {
	data, err := json.MarshalIndent(rf, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(revocationPath(dir), data, 0o600)
}

func cmdRevoke(args []string) {
	fs := flag.NewFlagSet("grid-ca revoke", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	certFile := fs.String("cert", "", "certificate file to revoke")
	serialStr := fs.String("serial", "", "serial number to revoke (decimal; alternative to -cert)")
	fs.Parse(args)

	var serial *big.Int
	switch {
	case *certFile != "":
		data, err := os.ReadFile(*certFile)
		if err != nil {
			cliutil.Fatalf("grid-ca revoke: %v", err)
		}
		cert, err := pki.DecodeCertPEM(data)
		if err != nil {
			cliutil.Fatalf("grid-ca revoke: %v", err)
		}
		serial = cert.SerialNumber
	case *serialStr != "":
		n, ok := new(big.Int).SetString(*serialStr, 10)
		if !ok {
			cliutil.Fatalf("grid-ca revoke: invalid serial %q", *serialStr)
		}
		serial = n
	default:
		cliutil.Fatalf("grid-ca revoke: -cert or -serial is required")
	}
	rf, err := loadRevocations(*dir)
	if err != nil {
		cliutil.Fatalf("grid-ca revoke: %v", err)
	}
	rf.Revoked[serial.String()] = time.Now().UTC()
	if err := rf.save(*dir); err != nil {
		cliutil.Fatalf("grid-ca revoke: %v", err)
	}
	fmt.Printf("revoked serial %s (%d total); run 'grid-ca crl' to publish\n", serial, len(rf.Revoked))
}

func cmdCRL(args []string) {
	fs := flag.NewFlagSet("grid-ca crl", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	out := fs.String("out", "", "output CRL file (default <dir>/ca.crl)")
	hours := fs.Int("hours", 24, "CRL validity in hours")
	fs.Parse(args)
	if *out == "" {
		*out = filepath.Join(*dir, "ca.crl")
	}
	ca := loadCA(*dir)
	rf, err := loadRevocations(*dir)
	if err != nil {
		cliutil.Fatalf("grid-ca crl: %v", err)
	}
	for serial, when := range rf.Revoked {
		n, ok := new(big.Int).SetString(serial, 10)
		if !ok {
			cliutil.Fatalf("grid-ca crl: corrupt serial %q in revoked.json", serial)
		}
		ca.RevokeSerial(n, when)
	}
	crl, err := ca.CRL(time.Duration(*hours) * time.Hour)
	if err != nil {
		cliutil.Fatalf("grid-ca crl: %v", err)
	}
	if err := os.WriteFile(*out, pki.EncodeCRLPEM(crl), 0o644); err != nil {
		cliutil.Fatalf("grid-ca crl: %v", err)
	}
	fmt.Printf("published CRL with %d revocation(s) to %s (valid %dh)\n", len(rf.Revoked), *out, *hours)
}
