// Command grid-ca manages a test certificate authority: it creates the CA,
// issues long-term user and host credentials, and exports the trust-root
// bundle relying parties need. It stands in for the production CAs of the
// paper's Grid deployments (paper §2.1).
//
// Usage:
//
//	grid-ca init   -dir ca/ -name "/C=US/O=Example Grid/CN=Example CA"
//	grid-ca user   -dir ca/ -cn "Jane Doe" -out jane.pem [-encrypt]
//	grid-ca host   -dir ca/ -hostname portal.example.org -out portal.pem
//	grid-ca show   -dir ca/
//	grid-ca revoke -dir ca/ -cert stolen.pem
//	grid-ca crl    -dir ca/ -out ca.crl
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cliutil"
	"repro/internal/pki"
)

func main() {
	if len(os.Args) < 2 {
		cliutil.Fatalf("usage: grid-ca {init|user|host|show|revoke|crl} [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "init":
		cmdInit(args)
	case "user":
		cmdUser(args)
	case "host":
		cmdHost(args)
	case "show":
		cmdShow(args)
	case "revoke":
		cmdRevoke(args)
	case "crl":
		cmdCRL(args)
	default:
		cliutil.Fatalf("grid-ca: unknown subcommand %q", cmd)
	}
}

func caPaths(dir string) (certPath, keyPath string) {
	return filepath.Join(dir, "ca-cert.pem"), filepath.Join(dir, "ca-key.pem")
}

func cmdInit(args []string) {
	fs := flag.NewFlagSet("grid-ca init", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	name := fs.String("name", "/C=US/O=Example Grid/CN=Example CA", "CA distinguished name")
	bits := fs.Int("bits", pki.DefaultKeyBits, "RSA modulus size")
	years := fs.Int("years", 10, "CA certificate lifetime in years")
	fs.Parse(args)

	dn, err := pki.ParseDN(*name)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	ca, err := pki.NewCA(pki.CAConfig{
		Name:     dn,
		KeyBits:  *bits,
		Lifetime: time.Duration(*years) * 365 * 24 * time.Hour,
	})
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	if err := os.MkdirAll(*dir, 0o700); err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	certPath, keyPath := caPaths(*dir)
	if err := os.WriteFile(certPath, pki.EncodeCertPEM(ca.Certificate()), 0o644); err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	if err := os.WriteFile(keyPath, pki.EncodeKeyPEM(ca.Credential().PrivateKey), 0o600); err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	fmt.Printf("created CA %s\n  certificate: %s\n  key:         %s\n", dn, certPath, keyPath)
}

func loadCA(dir string) *pki.CA {
	certPath, keyPath := caPaths(dir)
	cred, err := cliutil.LoadCertKey(certPath, keyPath, "CA key pass phrase")
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	ca, err := pki.LoadCA(cred)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	return ca
}

func cmdUser(args []string) {
	fs := flag.NewFlagSet("grid-ca user", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	cn := fs.String("cn", "", "user common name (required)")
	org := fs.String("org", "", "organizational DN prefix; default derives from the CA name")
	out := fs.String("out", "", "output credential file (required)")
	bits := fs.Int("bits", pki.DefaultKeyBits, "RSA modulus size")
	days := fs.Int("days", 365, "certificate lifetime in days")
	encrypt := fs.Bool("encrypt", false, "seal the private key with a pass phrase")
	fs.Parse(args)
	if *cn == "" || *out == "" {
		cliutil.Fatalf("grid-ca user: -cn and -out are required")
	}
	ca := loadCA(*dir)
	base := basePrefix(ca, *org)
	cred, err := ca.IssueCredential(base.WithCN(*cn), time.Duration(*days)*24*time.Hour, *bits)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	var pass []byte
	if *encrypt {
		p, err := cliutil.PromptNewPassphrase("key pass phrase")
		if err != nil {
			cliutil.Fatalf("grid-ca: %v", err)
		}
		pass = []byte(p)
	}
	if err := cred.SaveCredential(*out, pass); err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	fmt.Printf("issued %s -> %s\n", cred.Subject(), *out)
}

func cmdHost(args []string) {
	fs := flag.NewFlagSet("grid-ca host", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	hostname := fs.String("hostname", "", "service host name (required)")
	org := fs.String("org", "", "organizational DN prefix; default derives from the CA name")
	out := fs.String("out", "", "output credential file (required)")
	bits := fs.Int("bits", pki.DefaultKeyBits, "RSA modulus size")
	days := fs.Int("days", 365, "certificate lifetime in days")
	fs.Parse(args)
	if *hostname == "" || *out == "" {
		cliutil.Fatalf("grid-ca host: -hostname and -out are required")
	}
	ca := loadCA(*dir)
	base := basePrefix(ca, *org)
	cred, err := ca.IssueHostCredential(base, *hostname, time.Duration(*days)*24*time.Hour, *bits)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	if err := cred.SaveCredential(*out, nil); err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	fmt.Printf("issued %s -> %s\n", cred.Subject(), *out)
}

// basePrefix derives the issued-subject prefix: an explicit -org wins;
// otherwise the CA's own DN minus its final CN.
func basePrefix(ca *pki.CA, org string) pki.DN {
	if org != "" {
		dn, err := pki.ParseDN(org)
		if err != nil {
			cliutil.Fatalf("grid-ca: %v", err)
		}
		return dn
	}
	dn := ca.SubjectDN()
	if len(dn) > 1 && dn[len(dn)-1].Type == "CN" {
		return dn[:len(dn)-1]
	}
	return dn
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("grid-ca show", flag.ExitOnError)
	dir := fs.String("dir", "grid-ca", "CA state directory")
	fs.Parse(args)
	certPath, _ := caPaths(*dir)
	data, err := os.ReadFile(certPath)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	cert, err := pki.DecodeCertPEM(data)
	if err != nil {
		cliutil.Fatalf("grid-ca: %v", err)
	}
	dn, _ := pki.ParseRawDN(cert.RawSubject)
	fmt.Printf("subject:   %s\nserial:    %s\nnot after: %s\n", dn, cert.SerialNumber, cert.NotAfter.Format(time.RFC3339))
}
