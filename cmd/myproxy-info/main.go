// Command myproxy-info lists the credentials the repository holds for a
// user identity and the policies attached to them.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
)

func main() {
	fs := flag.NewFlagSet("myproxy-info", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	fs.Parse(os.Args[1:])
	if *cf.Username == "" {
		cliutil.Fatalf("myproxy-info: -l username is required")
	}
	client, err := cf.BuildClient("credential key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-info: %v", err)
	}
	pass, err := cliutil.PromptPassphrase("MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-info: %v", err)
	}
	infos, err := client.Info(context.Background(), *cf.Username, pass)
	if err != nil {
		cliutil.Fatalf("myproxy-info: %v", err)
	}
	fmt.Printf("username: %s\nserver:   %s\n", *cf.Username, *cf.Server)
	for _, ci := range infos {
		name := ci.Name
		if name == "" {
			name = "(default)"
		}
		fmt.Printf("credential %s:\n", name)
		fmt.Printf("  owner:      %s\n", ci.Owner)
		if ci.Description != "" {
			fmt.Printf("  desc:       %s\n", ci.Description)
		}
		fmt.Printf("  valid:      %s .. %s (%s left)\n",
			ci.StartTime.Local().Format(time.RFC3339),
			ci.EndTime.Local().Format(time.RFC3339),
			time.Until(ci.EndTime).Round(time.Minute))
		if ci.MaxDelegation != 0 {
			fmt.Printf("  max deleg:  %s\n", ci.MaxDelegation)
		}
		if ci.Retrievers != "" {
			fmt.Printf("  retrievers: %s\n", ci.Retrievers)
		}
		if len(ci.TaskTags) != 0 {
			fmt.Printf("  tasks:      %s\n", strings.Join(ci.TaskTags, ", "))
		}
	}
}
