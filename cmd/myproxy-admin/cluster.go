package main

// Cluster administration: inspect ring placement and reconcile node stores
// after membership changes. These subcommands run offline against the
// nodes' store directories (mounted or rsync'd to the admin host), the same
// operational model as the other myproxy-admin verbs.
//
//	myproxy-admin ring         -nodes a,b,c [-rf 2] [-l username]
//	myproxy-admin rebalance    -stores a=dirA,b=dirB,c=dirC [-rf 2] [-dry-run]
//	myproxy-admin decommission -stores a=dirA,b=dirB,c=dirC -node c [-rf 2] [-dry-run]

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/credstore"
)

func splitNodes(spec string) []cluster.NodeID {
	var out []cluster.NodeID
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, cluster.NodeID(n))
		}
	}
	return out
}

// parseStores parses "id=dir,id=dir" into per-node file stores.
func parseStores(spec string) map[cluster.NodeID]credstore.Backend {
	stores := make(map[cluster.NodeID]credstore.Backend)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, dir, ok := strings.Cut(pair, "=")
		if !ok || id == "" || dir == "" {
			cliutil.Fatalf("myproxy-admin: -stores entry %q is not id=dir", pair)
		}
		if _, dup := stores[cluster.NodeID(id)]; dup {
			cliutil.Fatalf("myproxy-admin: duplicate node %q in -stores", id)
		}
		s, err := credstore.NewFileStore(dir)
		if err != nil {
			cliutil.Fatalf("myproxy-admin: %s: %v", id, err)
		}
		stores[cluster.NodeID(id)] = s
	}
	if len(stores) == 0 {
		cliutil.Fatalf("myproxy-admin: -stores is required (id=dir,...)")
	}
	return stores
}

// cmdRing prints ring placement: either one username's replica set or the
// whole-keyspace ownership spread (sampled).
func cmdRing(args []string) {
	fs := flag.NewFlagSet("myproxy-admin ring", flag.ExitOnError)
	nodesSpec := fs.String("nodes", "", "comma-separated node IDs (required)")
	rf := fs.Int("rf", cluster.DefaultReplicationFactor, "replication factor")
	username := fs.String("l", "", "show the replica set for one username")
	samples := fs.Int("samples", 10000, "keys sampled for the ownership spread")
	fs.Parse(args)
	nodes := splitNodes(*nodesSpec)
	if len(nodes) == 0 {
		cliutil.Fatalf("myproxy-admin ring: -nodes is required")
	}
	ring := cluster.NewRing(0, nodes...)

	if *username != "" {
		replicas := ring.Successors(*username, *rf)
		fmt.Printf("%s -> %v (primary %s)\n", *username, replicas, replicas[0])
		return
	}
	counts := make(map[cluster.NodeID]int, len(nodes))
	for i := 0; i < *samples; i++ {
		for _, n := range ring.Successors(fmt.Sprintf("sample-%d", i), *rf) {
			counts[n]++
		}
	}
	fmt.Printf("ring of %d node(s), rf=%d, %d sampled keys:\n", len(nodes), *rf, *samples)
	sorted := ring.Nodes()
	for _, n := range sorted {
		share := float64(counts[n]) / float64(*samples**rf) * 100
		fmt.Printf("  %-16s %6.2f%% of placements\n", n, share)
	}
}

// planFromFlags inventories the stores and plans moves against the ring.
func planFromFlags(ring *cluster.Ring, rf int, stores map[cluster.NodeID]credstore.Backend, dryRun bool) {
	moves, err := cluster.Plan(ring, rf, stores)
	if err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	if len(moves) == 0 {
		fmt.Println("stores already match ring placement; nothing to do")
		return
	}
	for _, m := range moves {
		fmt.Println(m)
	}
	if dryRun {
		fmt.Printf("dry run: %d move(s) planned, none applied\n", len(moves))
		return
	}
	if err := cluster.Apply(moves, stores); err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	fmt.Printf("applied %d move(s)\n", len(moves))
}

// cmdRebalance reconciles entry placement after nodes were added (or after
// a repair restored an empty store).
func cmdRebalance(args []string) {
	fs := flag.NewFlagSet("myproxy-admin rebalance", flag.ExitOnError)
	storesSpec := fs.String("stores", "", "id=dir pairs for every node (required)")
	rf := fs.Int("rf", cluster.DefaultReplicationFactor, "replication factor")
	dryRun := fs.Bool("dry-run", false, "print the plan without applying it")
	fs.Parse(args)
	stores := parseStores(*storesSpec)
	ids := make([]cluster.NodeID, 0, len(stores))
	for id := range stores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	planFromFlags(cluster.NewRing(0, ids...), *rf, stores, *dryRun)
}

// cmdDecommission drains one node: the ring is built WITHOUT it, its store
// stays in the plan as a source, so its entries are copied to the new owners
// and then removed.
func cmdDecommission(args []string) {
	fs := flag.NewFlagSet("myproxy-admin decommission", flag.ExitOnError)
	storesSpec := fs.String("stores", "", "id=dir pairs for every node, including the leaver (required)")
	node := fs.String("node", "", "node ID to decommission (required)")
	rf := fs.Int("rf", cluster.DefaultReplicationFactor, "replication factor")
	dryRun := fs.Bool("dry-run", false, "print the plan without applying it")
	fs.Parse(args)
	if *node == "" {
		cliutil.Fatalf("myproxy-admin decommission: -node is required")
	}
	stores := parseStores(*storesSpec)
	if _, ok := stores[cluster.NodeID(*node)]; !ok {
		cliutil.Fatalf("myproxy-admin decommission: node %q not in -stores", *node)
	}
	var remaining []cluster.NodeID
	for id := range stores {
		if id != cluster.NodeID(*node) {
			remaining = append(remaining, id)
		}
	}
	if len(remaining) < *rf {
		cliutil.Fatalf("myproxy-admin decommission: %d remaining node(s) cannot hold rf=%d", len(remaining), *rf)
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	planFromFlags(cluster.NewRing(0, remaining...), *rf, stores, *dryRun)
}
