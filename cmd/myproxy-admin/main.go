// Command myproxy-admin operates directly on a repository's credential
// store directory (run it on the repository host as the service account):
// list holdings, purge expired credentials, and remove users. It mirrors
// the C implementation's myproxy-admin-* utilities.
//
//	myproxy-admin list    -store myproxy-store [-l username]
//	myproxy-admin purge   -store myproxy-store
//	myproxy-admin remove  -store myproxy-store -l username [-k name]
//	myproxy-admin stats   -store myproxy-store [-file path]
//
// Cluster administration (see cluster.go and DESIGN.md §12):
//
//	myproxy-admin ring         -nodes a,b,c [-rf 2] [-l username]
//	myproxy-admin rebalance    -stores a=dirA,b=dirB [-rf 2] [-dry-run]
//	myproxy-admin decommission -stores a=dirA,b=dirB -node b [-rf 2] [-dry-run]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/credstore"
)

func main() {
	if len(os.Args) < 2 {
		cliutil.Fatalf("usage: myproxy-admin {list|purge|remove|stats|ring|rebalance|decommission} [flags]")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "list":
		cmdList(args)
	case "purge":
		cmdPurge(args)
	case "remove":
		cmdRemove(args)
	case "stats":
		cmdStats(args)
	case "ring":
		cmdRing(args)
	case "rebalance":
		cmdRebalance(args)
	case "decommission":
		cmdDecommission(args)
	default:
		cliutil.Fatalf("myproxy-admin: unknown subcommand %q", cmd)
	}
}

func openStore(dir string) *credstore.FileStore {
	store, err := credstore.NewFileStore(dir)
	if err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	return store
}

func cmdList(args []string) {
	fs := flag.NewFlagSet("myproxy-admin list", flag.ExitOnError)
	dir := fs.String("store", "myproxy-store", "credential store directory")
	username := fs.String("l", "", "limit to one username")
	fs.Parse(args)
	store := openStore(*dir)

	usernames := []string{*username}
	if *username == "" {
		var err error
		usernames, err = store.Usernames()
		if err != nil {
			cliutil.Fatalf("myproxy-admin: %v", err)
		}
	}
	now := time.Now()
	total := 0
	for _, u := range usernames {
		entries, err := store.List(u)
		if err != nil {
			cliutil.Fatalf("myproxy-admin: %v", err)
		}
		for _, e := range entries {
			total++
			name := e.Name
			if name == "" {
				name = "(default)"
			}
			status := "valid"
			if e.Expired(now) {
				status = "EXPIRED"
			}
			extra := []string{e.Kind.String(), status}
			if e.Renewable {
				extra = append(extra, "renewable")
			}
			if len(e.TaskTags) != 0 {
				extra = append(extra, "tasks="+strings.Join(e.TaskTags, ","))
			}
			fmt.Printf("%-16s %-16s owner=%s until=%s [%s]\n",
				u, name, e.Owner, e.NotAfter.Format(time.RFC3339), strings.Join(extra, " "))
		}
	}
	fmt.Printf("%d credential(s)\n", total)
}

func cmdPurge(args []string) {
	fs := flag.NewFlagSet("myproxy-admin purge", flag.ExitOnError)
	dir := fs.String("store", "myproxy-store", "credential store directory")
	dryRun := fs.Bool("dry-run", false, "report without deleting")
	fs.Parse(args)
	store := openStore(*dir)
	removed, err := credstore.PurgeExpired(store, time.Now(), *dryRun)
	if err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	verb := "purged"
	if *dryRun {
		verb = "would purge"
	}
	fmt.Printf("%s %d expired credential(s)\n", verb, removed)
}

func cmdStats(args []string) {
	fs := flag.NewFlagSet("myproxy-admin stats", flag.ExitOnError)
	dir := fs.String("store", "myproxy-store", "credential store directory")
	file := fs.String("file", "", "stats snapshot file (default <store>/server.stats)")
	fs.Parse(args)
	path := *file
	if path == "" {
		path = filepath.Join(*dir, "server.stats")
	}
	counters, writtenAt, err := core.ReadStatsFile(path)
	if err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	fmt.Printf("stats written at %s\n", writtenAt.Format(time.RFC3339))
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-16s %d\n", k, counters[k])
	}
}

func cmdRemove(args []string) {
	fs := flag.NewFlagSet("myproxy-admin remove", flag.ExitOnError)
	dir := fs.String("store", "myproxy-store", "credential store directory")
	username := fs.String("l", "", "username (required)")
	name := fs.String("k", "", "credential name (empty = default; use -all for every credential)")
	all := fs.Bool("all", false, "remove every credential for the user")
	fs.Parse(args)
	if *username == "" {
		cliutil.Fatalf("myproxy-admin remove: -l username is required")
	}
	store := openStore(*dir)
	if *all {
		entries, err := store.List(*username)
		if err != nil {
			cliutil.Fatalf("myproxy-admin: %v", err)
		}
		for _, e := range entries {
			if err := store.Delete(*username, e.Name); err != nil {
				cliutil.Fatalf("myproxy-admin: %v", err)
			}
		}
		fmt.Printf("removed %d credential(s) for %s\n", len(entries), *username)
		return
	}
	if err := store.Delete(*username, *name); err != nil {
		cliutil.Fatalf("myproxy-admin: %v", err)
	}
	fmt.Printf("removed %s/%s\n", *username, *name)
}
