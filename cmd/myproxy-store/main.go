// Command myproxy-store deposits a long-term credential with the
// repository for safekeeping (paper §6.1). The credential is sealed
// client-side under the pass phrase: the repository never sees the
// plaintext private key.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
)

func main() {
	fs := flag.NewFlagSet("myproxy-store", flag.ExitOnError)
	cf := cliutil.RegisterClientFlags(fs, cliutil.DefaultProxyPath())
	credName := fs.String("k", "", "credential name")
	storeFile := fs.String("in", "", "credential file to deposit (required)")
	desc := fs.String("desc", "", "credential description")
	retrievers := fs.String("R", "", "DN pattern of clients allowed to retrieve")
	tags := fs.String("tags", "", "comma-separated task tags (paper §6.2)")
	fs.Parse(os.Args[1:])
	if *cf.Username == "" || *storeFile == "" {
		cliutil.Fatalf("myproxy-store: -l username and -in credential file are required")
	}
	client, err := cf.BuildClient("authentication key pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-store: %v", err)
	}
	toStore, err := cliutil.LoadCredential(*storeFile, "pass phrase for the credential being stored")
	if err != nil {
		cliutil.Fatalf("myproxy-store: %v", err)
	}
	pass, err := cliutil.PromptNewPassphrase("MyProxy pass phrase")
	if err != nil {
		cliutil.Fatalf("myproxy-store: %v", err)
	}
	var taskTags []string
	if *tags != "" {
		taskTags = strings.Split(*tags, ",")
	}
	if err := client.Store(context.Background(), core.StoreOptions{
		Username:    *cf.Username,
		Passphrase:  pass,
		CredName:    *credName,
		Credential:  toStore,
		Description: *desc,
		Retrievers:  *retrievers,
		TaskTags:    taskTags,
	}); err != nil {
		cliutil.Fatalf("myproxy-store: %v", err)
	}
	fmt.Printf("Credential %s stored for user %s (sealed client-side)\n", toStore.Subject(), *cf.Username)
}
