// Command grid-proxy-info inspects a proxy credential file: identity,
// proxy type and depth, policy, and remaining lifetime.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cliutil"
	"repro/internal/pki"
	"repro/internal/proxy"
)

func main() {
	file := flag.String("file", cliutil.DefaultProxyPath(), "proxy file to inspect")
	flag.Parse()

	cred, err := cliutil.LoadCredential(*file, "key pass phrase")
	if err != nil {
		cliutil.Fatalf("grid-proxy-info: %v", err)
	}
	subjectDN, err := cred.SubjectDN()
	if err != nil {
		cliutil.Fatalf("grid-proxy-info: %v", err)
	}
	fmt.Printf("subject  : %s\n", subjectDN)
	issuerDN, _ := pki.ParseRawDN(cred.Certificate.RawIssuer)
	fmt.Printf("issuer   : %s\n", issuerDN)

	// Walk down the chain to the first non-proxy certificate for the
	// Grid identity, counting proxy hops.
	depth := 0
	identity := subjectDN
	for _, c := range cred.CertChain() {
		if !proxy.IsProxy(c) {
			dn, err := pki.ParseRawDN(c.RawSubject)
			if err == nil {
				identity = dn
			}
			break
		}
		depth++
	}
	fmt.Printf("identity : %s\n", identity)

	desc, err := proxy.Describe(cred.Certificate)
	if err != nil {
		cliutil.Fatalf("grid-proxy-info: %v", err)
	}
	fmt.Printf("type     : %s\n", desc)
	fmt.Printf("depth    : %d\n", depth)
	if spec, ok := pki.SpecOf(cred.Certificate.PublicKey); ok {
		fmt.Printf("strength : %s\n", spec)
	} else {
		fmt.Printf("strength : unknown algorithm\n")
	}
	left := cred.TimeLeft()
	if left <= 0 {
		fmt.Printf("timeleft : EXPIRED (%s)\n", cred.Certificate.NotAfter.Format(time.RFC3339))
	} else {
		fmt.Printf("timeleft : %s\n", left.Round(time.Second))
	}
}
