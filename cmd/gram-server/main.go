// Command gram-server runs the GSI-protected job manager substrate
// (paper §2.5): it authenticates Grid clients, maps them to local accounts
// via a grid-mapfile, runs simulated jobs, and accepts delegated
// credentials so jobs can act on the user's behalf (paper §2.4).
package main

import (
	"flag"
	"log"
	"net"
	"os"

	"repro/internal/cliutil"
	"repro/internal/gram"
	"repro/internal/gsi"
)

func main() {
	listen := flag.String("listen", ":2119", "listen address (2119 is the Globus gatekeeper port)")
	credFile := flag.String("cred", "gram-host.pem", "service host credential")
	caFile := flag.String("ca", "grid-ca/ca-cert.pem", "trusted CA certificate bundle")
	gridmapFile := flag.String("gridmap", "grid-mapfile", "DN-to-account map file")
	flag.Parse()

	logger := log.New(os.Stderr, "gram: ", log.LstdFlags)
	cred, err := cliutil.LoadCredential(*credFile, "host key pass phrase")
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	roots, err := cliutil.LoadRoots(*caFile)
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	data, err := os.ReadFile(*gridmapFile)
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	gridmap, err := gsi.ParseGridmap(data)
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	srv, err := gram.NewServer(gram.Config{Credential: cred, Roots: roots, Gridmap: gridmap})
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
	logger.Printf("job manager %s listening on %s (%d gridmap entries)", cred.Subject(), *listen, gridmap.Len())
	if err := srv.Serve(ln); err != nil {
		cliutil.Fatalf("gram-server: %v", err)
	}
}
