// Command experiments reproduces every figure and claim of the paper's
// evaluation (see DESIGN.md §3 and EXPERIMENTS.md): the three protocol
// figures, the §3.3 scalability goals, and the §5/§6 security and
// extension behaviors. Each experiment prints the paper's claim and the
// measured outcome.
//
//	experiments -exp all          run everything
//	experiments -exp e4 -n 200    run one experiment with a custom op count
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/mss"
	"repro/internal/otp"
	"repro/internal/pki"
	"repro/internal/proxy"
	"repro/internal/sim"
)

var (
	nOps    = flag.Int("n", 100, "operations per measured workload")
	workers = flag.Int("workers", 8, "concurrent workers in load experiments")
	keyBits = flag.Int("bits", 1024, "RSA key size for simulated identities")
)

type experiment struct {
	id    string
	title string
	claim string
	run   func(ctx context.Context) error
}

func main() {
	expFlag := flag.String("exp", "all", "experiment id (e1..e12) or 'all'")
	flag.Parse()
	experiments := allExperiments()
	ctx := context.Background()

	selected := strings.ToLower(*expFlag)
	ran := 0
	for _, e := range experiments {
		if selected != "all" && selected != e.id {
			continue
		}
		ran++
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(e.id), e.title)
		fmt.Printf("paper: %s\n", e.claim)
		start := time.Now()
		if err := e.run(ctx); err != nil {
			fmt.Printf("RESULT: FAILED: %v\n\n", err)
			os.Exit(1)
		}
		fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

func newDeployment(cfg sim.Config) (*sim.Deployment, error) {
	if cfg.KeyBits == 0 {
		cfg.KeyBits = *keyBits
	}
	return sim.NewDeployment(cfg)
}

func allExperiments() []experiment {
	return []experiment{
		{"e1", "Figure 1: myproxy-init (delegation to the repository)",
			"the user delegates proxy credentials plus user ID and pass phrase to the repository; the repository holds only sealed keys",
			runE1},
		{"e2", "Figure 2: myproxy-get-delegation (retrieval)",
			"a client presenting the user ID and pass phrase receives a freshly delegated proxy that authenticates as the user",
			runE2},
		{"e3", "Figure 3: portal flow (login -> delegation -> Grid actions)",
			"a web portal, holding no user secrets at rest, retrieves a delegation at login and acts on the Grid as the user",
			runE3},
		{"e4", "§3.3 scalability: portals x repositories",
			"multiple portals can share one repository and one portal can use multiple repositories",
			runE4},
		{"e5", "§5.1 sealed store: compromise yields no usable keys",
			"the repository encrypts held credentials with the user's pass phrase; an intruder must brute-force each key individually",
			runE5},
		{"e6", "§5.1 ACLs: deny-by-default authorization",
			"ACLs prevent unauthorized clients from depositing or retrieving, even with a stolen pass phrase",
			runE6},
		{"e7", "§2.4 chained delegation: portal -> job -> storage",
			"delegation can be chained: host A can delegate to host B and so forth, preserving the user identity",
			runE7},
		{"e8", "§2.3/§4 lifetimes: clamping and expiry",
			"stored credentials default to a week, retrieved proxies to hours; owner restrictions cap delegated lifetimes",
			runE8},
		{"e9", "§5.1/§6.3 replay: pass phrase vs one-time password",
			"replacing the pass phrase with a one-time password defeats replay of captured authentication data",
			runE9},
		{"e10", "§6.2 wallet: task-based credential selection",
			"the repository selects the correct credential for a task among multiple stored credentials",
			runE10},
		{"e11", "§6.6 renewal: long-running jobs outlive their proxies",
			"the repository supplies fresh credentials to authorized renewers without user interaction",
			runE11},
		{"e12", "§6.5 restricted proxies: fine-grain delegation limits",
			"restrictions embedded in delegated credentials limit the damage a stolen credential can do",
			runE12},
	}
}

// --- E1 ---

func runE1(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	rec := sim.NewLatencyRecorder()
	for i := 0; i < *nOps; i++ {
		start := time.Now()
		if err := d.UserClient(0, 0).Put(ctx, core.PutOptions{
			Username:   d.UserNames[0],
			Passphrase: d.Passphrase,
			Lifetime:   24 * time.Hour,
		}); err != nil {
			return err
		}
		rec.Add(time.Since(start))
	}
	fmt.Printf("myproxy-init latency: %s\n", rec.Summary())
	// The repository's copy is sealed.
	entry, err := d.Repos[0].Store().Get(d.UserNames[0], "")
	if err != nil {
		return err
	}
	if strings.Contains(string(entry.SealedKey), "RSA PRIVATE KEY") {
		return fmt.Errorf("plaintext key at rest")
	}
	fmt.Printf("stored entry: sealed key %d bytes, owner %s, expires %s\n",
		len(entry.SealedKey), entry.Owner, entry.NotAfter.Format(time.RFC3339))
	return nil
}

// --- E2 ---

func runE2(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, Portals: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	rec := sim.NewLatencyRecorder()
	var got *pki.Credential
	for i := 0; i < *nOps; i++ {
		start := time.Now()
		got, err = d.Get(ctx, 0, 0, 0, 2*time.Hour)
		if err != nil {
			return err
		}
		rec.Add(time.Since(start))
	}
	fmt.Printf("myproxy-get-delegation latency: %s\n", rec.Summary())
	res, err := proxy.Verify(got.CertChain(), proxy.VerifyOptions{Roots: d.Roots})
	if err != nil {
		return err
	}
	fmt.Printf("delegated identity: %s (proxy depth %d, %v left)\n",
		res.IdentityString(), res.Depth, got.TimeLeft().Round(time.Minute))
	if res.IdentityString() != d.Users[0].Subject() {
		return fmt.Errorf("identity mismatch")
	}
	return nil
}

// --- E3 ---

func runE3(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, Portals: 1, WithGRAM: true, WithMSS: true})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	// Step 1-3 (Fig. 3): the portal logs the user in by retrieving a
	// delegation.
	loginStart := time.Now()
	cred, err := d.Get(ctx, 0, 0, 0, 2*time.Hour)
	if err != nil {
		return err
	}
	fmt.Printf("portal login (repository round trip): %v\n", time.Since(loginStart).Round(time.Millisecond))

	// The portal then submits a job as the user, delegating to it, and
	// the job stores its result to mass storage (the §2.4 scenario).
	gramCli := &gram.Client{Credential: cred, Roots: d.Roots, Addr: d.GRAMAddr}
	defer gramCli.Close()
	st, err := gramCli.Submit("store-result", []string{d.MSSAddr, "result.dat", "42"}, true)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.State != gram.StateDone && st.State != gram.StateFailed {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", st.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
		if st, err = gramCli.Status(st.ID); err != nil {
			return err
		}
	}
	if st.State != gram.StateDone {
		return fmt.Errorf("job failed: %s", st.Error)
	}
	fmt.Printf("job %q ran as local user %q and stored its result\n", st.ID, st.LocalUser)

	// Verify through the user's own client that the result landed.
	mssCli := &mss.Client{Credential: d.Users[0], Roots: d.Roots, Addr: d.MSSAddr}
	defer mssCli.Close()
	data, err := mssCli.Get("result.dat")
	if err != nil {
		return err
	}
	fmt.Printf("mass storage holds result.dat = %q (written via chained delegation)\n", data)
	return nil
}

// --- E4 ---

func runE4(ctx context.Context) error {
	// Many portals, one repository.
	d, err := newDeployment(sim.Config{Users: 4, Portals: 8})
	if err != nil {
		return err
	}
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		d.Close()
		return err
	}
	for _, portals := range []int{1, 2, 4, 8} {
		rec, err := sim.RunConcurrent(portals, *nOps, func(worker, iter int) error {
			_, err := d.Get(ctx, worker%portals, iter%len(d.Users), 0, time.Hour)
			return err
		})
		if err != nil {
			d.Close()
			return err
		}
		fmt.Printf("portals=%d sharing 1 repo: %s\n", portals, rec.Summary())
	}
	d.Close()

	// One portal, many repositories.
	d2, err := newDeployment(sim.Config{Users: 2, Portals: 1, Repos: 4})
	if err != nil {
		return err
	}
	defer d2.Close()
	if err := d2.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	for _, repos := range []int{1, 2, 4} {
		rec, err := sim.RunConcurrent(*workers, *nOps, func(worker, iter int) error {
			_, err := d2.Get(ctx, 0, iter%len(d2.Users), iter%repos, time.Hour)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("1 portal across %d repos: %s\n", repos, rec.Summary())
	}

	// A synthetic portal day: seeded sessions of login -> jobs -> logout
	// (the substitution for production portal logs; see DESIGN.md).
	d3, err := newDeployment(sim.Config{Users: 4, Portals: 4, WithGRAM: true})
	if err != nil {
		return err
	}
	defer d3.Close()
	if err := d3.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	day, err := d3.RunPortalDay(ctx, sim.DayConfig{
		Seed:              2001,
		Sessions:          *nOps,
		MaxJobsPerSession: 3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("portal day trace: %s\n", day.Summary())
	return nil
}

// --- E5 ---

func runE5(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	entry, err := d.Repos[0].Store().Get(d.UserNames[0], "")
	if err != nil {
		return err
	}
	if strings.Contains(string(entry.SealedKey), "RSA PRIVATE KEY") {
		return fmt.Errorf("plaintext key found in store dump")
	}
	fmt.Println("store dump contains no plaintext keys; AEAD-sealed containers only")

	// Brute-force cost: measure one pass-phrase guess at several KDF
	// iteration counts (the defense §5.1 relies on).
	for _, iter := range []int{1024, 16384, 65536} {
		sealed, err := pki.SealBytes([]byte("fake key material"), []byte(d.Passphrase), iter)
		if err != nil {
			return err
		}
		start := time.Now()
		guesses := 20
		for g := 0; g < guesses; g++ {
			_, _ = pki.OpenBytes(sealed, []byte(fmt.Sprintf("guess-%d", g)))
		}
		per := time.Since(start) / time.Duration(guesses)
		fmt.Printf("kdf-iterations=%-6d cost per pass-phrase guess: %v\n", iter, per.Round(time.Microsecond))
	}
	return nil
}

// --- E6 ---

func runE6(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 2, Portals: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	// Rebuild a repository with tight ACLs: only user000 may deposit,
	// only portal00 may retrieve.
	// (The sim deployment is permissive; use the permissive one to show
	// allowed ops and a DN check for denial via per-credential ACL.)
	if err := d.UserClient(0, 0).Put(ctx, core.PutOptions{
		Username:   "restricted",
		Passphrase: d.Passphrase,
		Retrievers: "/C=US/O=Sim Grid/CN=portal00.sim",
	}); err != nil {
		return err
	}
	// The wrong (but trusted and server-ACL-authorized) identity, with
	// the CORRECT pass phrase, is refused by the credential ACL.
	_, err = d.UserClient(1, 0).Get(ctx, core.GetOptions{
		Username: "restricted", Passphrase: d.Passphrase,
	})
	if err == nil {
		return fmt.Errorf("unauthorized retriever succeeded")
	}
	fmt.Printf("unauthorized retriever with stolen pass phrase: DENIED (%v)\n", err)
	cred, err := d.Get(ctx, 0, 0, 0, time.Hour)
	_ = cred
	if err != nil {
		return fmt.Errorf("authorized retriever failed: %w", err)
	}
	fmt.Println("authorized retriever: OK")
	if fails := d.Repos[0].Stats().AuthFailures.Load(); fails == 0 {
		return fmt.Errorf("denial not recorded")
	}
	return nil
}

// --- E7 ---

func runE7(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	// Build delegation chains of increasing depth locally and measure
	// verification cost at each depth.
	cred := d.Users[0]
	for depth := 1; depth <= 6; depth++ {
		next, err := proxy.New(cred, proxy.Options{Lifetime: time.Hour, KeyBits: *keyBits})
		if err != nil {
			return err
		}
		cred = next
		start := time.Now()
		const reps = 200
		for i := 0; i < reps; i++ {
			if _, err := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: d.Roots}); err != nil {
				return err
			}
		}
		per := time.Since(start) / reps
		res, _ := proxy.Verify(cred.CertChain(), proxy.VerifyOptions{Roots: d.Roots})
		fmt.Printf("chain depth %d: verify %v/op, identity preserved: %v\n",
			depth, per.Round(time.Microsecond), res.IdentityString() == d.Users[0].Subject())
	}
	return nil
}

// --- E8 ---

func runE8(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, Portals: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	// Owner deposits with a 30-minute retrieval restriction.
	if err := d.UserClient(0, 0).Put(ctx, core.PutOptions{
		Username:      d.UserNames[0],
		Passphrase:    d.Passphrase,
		Lifetime:      24 * time.Hour,
		MaxDelegation: 30 * time.Minute,
	}); err != nil {
		return err
	}
	cred, err := d.Get(ctx, 0, 0, 0, 8*time.Hour) // ask for far more
	if err != nil {
		return err
	}
	fmt.Printf("requested 8h, owner restriction 30m -> received %v\n", cred.TimeLeft().Round(time.Minute))
	if cred.TimeLeft() > 31*time.Minute {
		return fmt.Errorf("owner restriction not enforced")
	}
	// Server-side default clamps too: a plain deposit, huge request.
	if err := d.UserClient(0, 0).Put(ctx, core.PutOptions{
		Username: "plain", Passphrase: d.Passphrase, Lifetime: 24 * time.Hour,
	}); err != nil {
		return err
	}
	cred2, err := d.PortalClient(0, 0).Get(ctx, core.GetOptions{
		Username: "plain", Passphrase: d.Passphrase, Lifetime: 100 * time.Hour,
	})
	if err != nil {
		return err
	}
	fmt.Printf("requested 100h with no restriction -> server policy capped at %v\n", cred2.TimeLeft().Round(time.Minute))
	return nil
}

// --- E9 ---

func runE9(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, Portals: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.SeedCredentials(ctx, 24*time.Hour); err != nil {
		return err
	}
	// Pass-phrase-only: a captured exchange replays successfully.
	if _, err := d.Get(ctx, 0, 0, 0, time.Hour); err != nil {
		return err
	}
	if _, err := d.Get(ctx, 0, 0, 0, time.Hour); err != nil {
		return err
	}
	fmt.Println("pass-phrase scheme: captured (user,pass) pair REPLAYS successfully (the §5.1 weakness)")

	// With OTP enabled, the same capture is single-use: demonstrate with
	// the verifier the repository embeds (internal/core wires the same
	// registry into GET/RETRIEVE; see core's TestOTPFlow for the full
	// protocol path).
	reg := otp.NewRegistry()
	secret := "otp secret phrase"
	if err := reg.Register("jdoe", otp.MD5, secret, "seed1", 50); err != nil {
		return err
	}
	challenge, _ := reg.Challenge("jdoe")
	resp, err := otp.Respond(challenge, secret)
	if err != nil {
		return err
	}
	if err := reg.Verify("jdoe", resp); err != nil {
		return err
	}
	if err := reg.Verify("jdoe", resp); err == nil {
		return fmt.Errorf("OTP replay accepted")
	}
	fmt.Println("one-time-password scheme: the same captured response is REJECTED on replay (§6.3 fix)")
	return nil
}

// --- E10 ---

func runE10(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, Portals: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	userCli := d.UserClient(0, 0)
	for _, c := range []struct {
		name string
		tags []string
	}{
		{"compute", []string{"job-submit"}},
		{"data", []string{"file-read", "file-write"}},
	} {
		if err := userCli.Put(ctx, core.PutOptions{
			Username: d.UserNames[0], Passphrase: d.Passphrase,
			CredName: c.name, TaskTags: c.tags, Lifetime: 24 * time.Hour,
		}); err != nil {
			return err
		}
	}
	for _, task := range []string{"job-submit", "file-write"} {
		cred, err := d.PortalClient(0, 0).Get(ctx, core.GetOptions{
			Username: d.UserNames[0], Passphrase: d.Passphrase, TaskHint: task,
		})
		if err != nil {
			return err
		}
		fmt.Printf("task %q -> credential selected, %v left\n", task, cred.TimeLeft().Round(time.Minute))
	}
	if _, err := d.PortalClient(0, 0).Get(ctx, core.GetOptions{
		Username: d.UserNames[0], Passphrase: d.Passphrase, TaskHint: "unknown-task",
	}); err == nil {
		return fmt.Errorf("unknown task satisfied")
	}
	fmt.Println("task with no matching credential: correctly refused")
	return nil
}

// --- E11 ---

func runE11(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1})
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.UserClient(0, 0).Put(ctx, core.PutOptions{
		Username: d.UserNames[0], Renewable: true, Lifetime: 24 * time.Hour,
	}); err != nil {
		return err
	}
	// A job with a 10-minute proxy renews it without any pass phrase.
	jobProxy, err := d.UserProxy(0, 10*time.Minute)
	if err != nil {
		return err
	}
	before := jobProxy.TimeLeft()
	jobClient := &core.Client{
		Credential: jobProxy, Roots: d.Roots, Addr: d.RepoAddrs[0],
		ExpectedServer: "/C=US/O=Sim Grid/CN=myproxy*", KeyBits: *keyBits,
	}
	fresh, err := jobClient.Get(ctx, core.GetOptions{
		Username: d.UserNames[0], Renewal: true, Lifetime: 2 * time.Hour,
	})
	if err != nil {
		return err
	}
	fmt.Printf("job proxy: %v left -> renewed to %v (no pass phrase, authorized by identity + renewer ACL)\n",
		before.Round(time.Minute), fresh.TimeLeft().Round(time.Minute))
	if fresh.TimeLeft() <= before {
		return fmt.Errorf("renewal did not extend lifetime")
	}
	return nil
}

// --- E12 ---

func runE12(ctx context.Context) error {
	d, err := newDeployment(sim.Config{Users: 1, WithGRAM: true, WithMSS: true})
	if err != nil {
		return err
	}
	defer d.Close()
	readOnly, err := proxy.New(d.Users[0], proxy.Options{
		Type:          proxy.RFC3820Restricted,
		RestrictedOps: []string{proxy.OpFileRead},
		Lifetime:      time.Hour,
		KeyBits:       *keyBits,
	})
	if err != nil {
		return err
	}
	gramCli := &gram.Client{Credential: readOnly, Roots: d.Roots, Addr: d.GRAMAddr}
	defer gramCli.Close()
	if _, err := gramCli.Submit("echo", []string{"x"}, false); err == nil {
		return fmt.Errorf("restricted proxy submitted a job")
	}
	fmt.Println("read-only restricted proxy: job submission DENIED")
	mssCli := &mss.Client{Credential: readOnly, Roots: d.Roots, Addr: d.MSSAddr}
	defer mssCli.Close()
	if err := mssCli.Put("f", []byte("x")); err == nil {
		return fmt.Errorf("restricted proxy wrote a file")
	}
	fmt.Println("read-only restricted proxy: file write DENIED")
	if _, err := mssCli.List(); err != nil {
		return fmt.Errorf("restricted proxy read refused: %w", err)
	}
	fmt.Println("read-only restricted proxy: file read PERMITTED")
	return nil
}
