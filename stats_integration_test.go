package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestStatsCLIEndToEnd checks the operator loop for resilience counters:
// the server persists a stats snapshot on graceful shutdown (SIGTERM →
// drain → flush) and myproxy-admin stats renders it offline.
func TestStatsCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full CLI suite")
	}
	bin := builtBinaries(t)
	work := t.TempDir()

	run := func(stdin string, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	run("", "grid-ca", "init", "-dir", "ca", "-name", "/C=US/O=Stats Grid/CN=Stats CA", "-bits", "1024")
	run("", "grid-ca", "user", "-dir", "ca", "-cn", "Alice Stats", "-out", "alice.pem", "-bits", "1024")
	run("", "grid-ca", "host", "-dir", "ca", "-hostname", "localhost", "-out", "myproxy-host.pem", "-bits", "1024")
	mustWrite(t, filepath.Join(work, "accepted"), "/C=US/O=Stats Grid/*\n")
	mustWrite(t, filepath.Join(work, "retrievers"), "/C=US/O=Stats Grid/*\n")

	addr := freeAddr(t)
	server := exec.Command(filepath.Join(bin, "myproxy-server"),
		"-listen", addr,
		"-cred", "myproxy-host.pem",
		"-ca", filepath.Join("ca", "ca-cert.pem"),
		"-store", "store",
		"-accepted", "accepted",
		"-retrievers", "retrievers",
		"-kdf-iter", "1024",
		"-drain-timeout", "10s",
	)
	server.Dir = work
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			server.Process.Kill()
			server.Wait()
		}
	}()
	waitForListen(t, addr)

	common := []string{"-s", addr, "-ca", filepath.Join("ca", "ca-cert.pem"), "-serverdn", "*/CN=localhost"}
	run("stats pass phrase\nstats pass phrase\n", "myproxy-init",
		append([]string{"-l", "alice", "-cred", "alice.pem", "-c", "24"}, common...)...)

	// Graceful shutdown persists the final snapshot.
	if err := server.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- server.Wait() }()
	select {
	case err := <-done:
		killed = true
		if err != nil {
			t.Fatalf("server did not exit cleanly on SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	out := run("", "myproxy-admin", "stats", "-store", "store")
	for _, want := range []string{"stats written at", "puts", "connections", "retries", "timeouts", "drain_refusals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	// The one deposit is visible in the counters.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "puts" && fields[1] == "1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats did not record the deposit:\n%s", out)
	}
}
