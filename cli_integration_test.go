package repro

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCLIEndToEnd exercises the command-line tools as a user would
// (paper §2.5 and §4): create a CA and credentials with grid-ca, make a
// proxy with grid-proxy-init, run myproxy-server, deposit with
// myproxy-init, retrieve with myproxy-get-delegation from a different
// identity, inspect with myproxy-info and grid-proxy-info, and clean up
// with myproxy-destroy.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the full CLI suite")
	}
	bin := builtBinaries(t)
	work := t.TempDir()

	run := func(stdin string, name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, name), args...)
		cmd.Dir = work
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// CA and credentials.
	run("", "grid-ca", "init", "-dir", "ca", "-name", "/C=US/O=CLI Grid/CN=CLI CA", "-bits", "1024")
	run("", "grid-ca", "user", "-dir", "ca", "-cn", "Alice CLI", "-out", "alice.pem", "-bits", "1024")
	run("", "grid-ca", "host", "-dir", "ca", "-hostname", "localhost", "-out", "myproxy-host.pem", "-bits", "1024")
	run("", "grid-ca", "host", "-dir", "ca", "-hostname", "portal.cli", "-out", "portal.pem", "-bits", "1024")
	if out := run("", "grid-ca", "show", "-dir", "ca"); !strings.Contains(out, "CLI CA") {
		t.Fatalf("grid-ca show: %s", out)
	}

	// grid-proxy-init + grid-proxy-info.
	run("", "grid-proxy-init", "-cred", "alice.pem", "-out", "alice-proxy.pem", "-hours", "4", "-bits", "1024")
	info := run("", "grid-proxy-info", "-file", "alice-proxy.pem")
	if !strings.Contains(info, "identity : /C=US/O=CLI Grid/CN=Alice CLI") ||
		!strings.Contains(info, "RFC 3820 proxy") {
		t.Fatalf("grid-proxy-info:\n%s", info)
	}

	// ACL files.
	mustWrite(t, filepath.Join(work, "accepted"), "/C=US/O=CLI Grid/*\n")
	mustWrite(t, filepath.Join(work, "retrievers"), "\"/C=US/O=CLI Grid/CN=portal.cli\"\n")

	// Start the repository on a private port.
	addr := freeAddr(t)
	server := exec.Command(filepath.Join(bin, "myproxy-server"),
		"-listen", addr,
		"-cred", "myproxy-host.pem",
		"-ca", filepath.Join("ca", "ca-cert.pem"),
		"-store", "store",
		"-accepted", "accepted",
		"-retrievers", "retrievers",
		"-kdf-iter", "1024",
	)
	server.Dir = work
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		server.Process.Kill()
		server.Wait()
	}()
	waitForListen(t, addr)

	common := []string{"-s", addr, "-ca", filepath.Join("ca", "ca-cert.pem"), "-serverdn", "*/CN=localhost"}

	// myproxy-init as alice (pass phrase prompted twice).
	out := run("cli pass phrase\ncli pass phrase\n", "myproxy-init",
		append([]string{"-l", "alice", "-cred", "alice-proxy.pem", "-c", "24"}, common...)...)
	if !strings.Contains(out, "now exists") {
		t.Fatalf("myproxy-init: %s", out)
	}

	// myproxy-info.
	out = run("cli pass phrase\n", "myproxy-info",
		append([]string{"-l", "alice", "-cred", "alice-proxy.pem"}, common...)...)
	if !strings.Contains(out, "owner:      /C=US/O=CLI Grid/CN=Alice CLI") {
		t.Fatalf("myproxy-info: %s", out)
	}

	// myproxy-get-delegation as the portal.
	out = run("cli pass phrase\n", "myproxy-get-delegation",
		append([]string{"-l", "alice", "-cred", "portal.pem", "-o", "retrieved.pem", "-t", "1"}, common...)...)
	if !strings.Contains(out, "A proxy has been received") {
		t.Fatalf("myproxy-get-delegation: %s", out)
	}
	info = run("", "grid-proxy-info", "-file", "retrieved.pem")
	if !strings.Contains(info, "identity : /C=US/O=CLI Grid/CN=Alice CLI") ||
		!strings.Contains(info, "depth    : 3") {
		t.Fatalf("retrieved proxy info:\n%s", info)
	}

	// Wrong pass phrase is refused.
	cmd := exec.Command(filepath.Join(bin, "myproxy-get-delegation"),
		append([]string{"-l", "alice", "-cred", "portal.pem", "-o", "nope.pem"}, common...)...)
	cmd.Dir = work
	cmd.Stdin = strings.NewReader("wrong pass\n")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("wrong pass phrase succeeded: %s", out)
	}

	// myproxy-destroy, then retrieval fails.
	run("cli pass phrase\n", "myproxy-destroy",
		append([]string{"-l", "alice", "-cred", "alice-proxy.pem"}, common...)...)
	cmd = exec.Command(filepath.Join(bin, "myproxy-get-delegation"),
		append([]string{"-l", "alice", "-cred", "portal.pem", "-o", "nope.pem"}, common...)...)
	cmd.Dir = work
	cmd.Stdin = strings.NewReader("cli pass phrase\n")
	if out, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("retrieval after destroy succeeded: %s", out)
	}
}

var (
	binOnce sync.Once
	binDir  string
	binErr  error
)

// builtBinaries compiles cmd/... once per test process.
func builtBinaries(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		binDir, binErr = os.MkdirTemp("", "repro-bin-")
		if binErr != nil {
			return
		}
		build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
		build.Stderr = os.Stderr
		binErr = build.Run()
	})
	if binErr != nil {
		t.Fatalf("go build ./cmd/...: %v", binErr)
	}
	return binDir
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitForListen(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal(fmt.Errorf("server never listened on %s", addr))
}
