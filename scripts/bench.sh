#!/bin/sh
# bench.sh — run the reproduction benchmarks with -benchmem and emit a
# machine-readable BENCH_<n>.json trajectory point in the repository root.
#
# Two benchmark classes run with different -benchtime:
#
#   * deployment benchmarks (Fig. 1/2/3, scalability, portal-day, renewal)
#     run a fixed 100 iterations so the warm keypair pool (see
#     bench_test.go benchKeyPool and DESIGN.md §9) covers the whole timed
#     region — these measure hot-path request latency;
#   * micro benchmarks (chain verify, proxy mint, KDF, wire substrate)
#     run time-based for tight confidence intervals.
#
# Usage:
#   scripts/bench.sh [-out FILE] [-baseline RAWFILE] [-label TEXT]
#
#   -out FILE       write JSON here (default: next free BENCH_<n>.json)
#   -baseline FILE  embed a previously captured raw `go test -bench`
#                   output as the "baseline" section, for before/after
#                   points like BENCH_1.json
#   -label TEXT     label for the embedded baseline (default "baseline")
#
# The raw benchmark output is kept next to the JSON as <out>.txt.
set -eu

cd "$(dirname "$0")/.."

DEPLOY_BENCH='BenchmarkFig1Init|BenchmarkFig2GetDelegation|BenchmarkFig2Algorithms|BenchmarkFig2Multiplexed|BenchmarkFig3PortalFlow|BenchmarkScalabilityPortalsPerRepo|BenchmarkScalabilityReposPerPortal|BenchmarkPortalDay|BenchmarkRenewal'
MICRO_BENCH='BenchmarkDelegationChain|BenchmarkProxyCreate|BenchmarkRestrictedVerify|BenchmarkOTPVerify|BenchmarkWireDelegation|BenchmarkChannelEstablish|BenchmarkCredstoreSealUnseal|BenchmarkKDF'
DEPLOY_TIME='100x'
MICRO_TIME='2s'

out=''
baseline=''
label='baseline'
while [ $# -gt 0 ]; do
	case "$1" in
	-out) out="$2"; shift 2 ;;
	-baseline) baseline="$2"; shift 2 ;;
	-label) label="$2"; shift 2 ;;
	*) echo "bench.sh: unknown argument $1" >&2; exit 2 ;;
	esac
done
if [ -z "$out" ]; then
	n=1
	while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
	out="BENCH_${n}.json"
fi

raw="${out%.json}.txt"
: >"$raw"

echo "== deployment benchmarks (-benchtime $DEPLOY_TIME)" >&2
go test -run '^$' -bench "$DEPLOY_BENCH" -benchtime "$DEPLOY_TIME" -benchmem . | tee -a "$raw"
echo "== micro benchmarks (-benchtime $MICRO_TIME)" >&2
go test -run '^$' -bench "$MICRO_BENCH" -benchtime "$MICRO_TIME" -benchmem . | tee -a "$raw"

# results_json FILE — parse `go test -bench` raw output into a JSON array
# of {name, iterations, ns_op, bytes_op, allocs_op}.
results_json() {
	awk '
	/^Benchmark/ {
		name = $1; iters = $2; ns = ""
		bytes = "null"; allocs = "null"
		for (i = 3; i <= NF; i++) {
			if ($i == "ns/op") ns = $(i - 1)
			if ($i == "B/op") bytes = $(i - 1)
			if ($i == "allocs/op") allocs = $(i - 1)
		}
		if (ns == "") next
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s}", \
			name, iters, ns, bytes, allocs
	}
	END { if (n) printf "\n" }
	' "$1"
}

cpu=$(awk '/^cpu:/ { sub(/^cpu: /, ""); print; exit }' "$raw")

{
	echo '{'
	echo '  "schema": "myproxy-bench-v1",'
	echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
	echo "  \"go\": \"$(go version | sed 's/^go version //')\","
	echo "  \"cpu\": \"${cpu}\","
	echo "  \"benchtime\": {\"deployment\": \"${DEPLOY_TIME}\", \"micro\": \"${MICRO_TIME}\"},"
	if [ -n "$baseline" ]; then
		echo "  \"baseline_label\": \"${label}\","
		echo '  "baseline": ['
		results_json "$baseline"
		echo '  ],'
	fi
	echo '  "results": ['
	results_json "$raw"
	echo '  ]'
	echo '}'
} >"$out"

echo "wrote $out (raw output in $raw)" >&2
