#!/bin/sh
# bench-compare.sh — diff the two most recent BENCH_<n>.json trajectory
# points and flag >10% regressions in ns/op OR allocs/op on benchmarks
# present in both. Allocation counts gate alongside latency because the
# Fig. 2 speedups (key pool, verify cache, session reuse) are exactly
# allocation removals — a benchmark can hold its ns/op on a fast machine
# while quietly regrowing its garbage.
#
# Usage:
#   scripts/bench-compare.sh [OLD.json NEW.json]
#
# With no arguments the two highest-numbered BENCH_<n>.json in the
# repository root are compared. Exits nonzero if any shared benchmark
# regressed by more than the threshold, so CI can gate on it. New or
# removed benchmarks are reported but never fail the comparison.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD=10 # percent ns/op or allocs/op growth tolerated before flagging

if [ $# -eq 2 ]; then
	old="$1"
	new="$2"
else
	prev=''
	latest=''
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		prev="$latest"
		latest="BENCH_${n}.json"
		n=$((n + 1))
	done
	if [ -z "$prev" ]; then
		echo "bench-compare: need at least two BENCH_<n>.json points" >&2
		exit 2
	fi
	old="$prev"
	new="$latest"
fi

echo "comparing $old -> $new (flagging ns/op or allocs/op regressions > ${THRESHOLD}%)"

# The emitter writes one result object per line, so a line-oriented parse
# is reliable without a JSON tool. Only the "results" arrays are read;
# an embedded "baseline" section is ignored. Results that predate the
# allocs_op field report -1 and are skipped for the allocation gate.
extract() {
	awk '
	/"results": \[/ { in_results = 1; next }
	in_results && /^  \]/ { in_results = 0 }
	in_results && /"name"/ {
		name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
		ns = $0; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
		allocs = -1
		if ($0 ~ /"allocs_op":/) {
			allocs = $0; sub(/.*"allocs_op": /, "", allocs); sub(/[,}].*/, "", allocs)
		}
		print name, ns, allocs
	}
	' "$1"
}

extract "$old" >/tmp/bench_old.$$
extract "$new" >/tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

awk -v threshold="$THRESHOLD" '
NR == FNR { old_ns[$1] = $2; old_allocs[$1] = $3; next }
{
	new[$1] = 1
	if (!($1 in old_ns)) { added++; next }
	compared++
	verdict = "ok        "
	delta = 100 * ($2 - old_ns[$1]) / old_ns[$1]
	note = sprintf("%12.0f -> %12.0f ns/op (%+.1f%%)", old_ns[$1], $2, delta)
	if (delta > threshold) { verdict = "REGRESSION"; bad++ }
	# Allocation gate: both points must carry the field, and a zero-alloc
	# old point only regresses by becoming nonzero.
	if (old_allocs[$1] >= 0 && $3 >= 0) {
		if (old_allocs[$1] == 0) {
			adelta = ($3 > 0) ? 100 : 0
		} else {
			adelta = 100 * ($3 - old_allocs[$1]) / old_allocs[$1]
		}
		note = note sprintf(", %d -> %d allocs/op (%+.1f%%)", old_allocs[$1], $3, adelta)
		if (adelta > threshold) {
			if (verdict != "REGRESSION") { verdict = "REGRESSION"; bad++ }
		}
	}
	printf "%s %-60s %s\n", verdict, $1, note
}
END {
	for (name in old_ns) if (!(name in new)) removed++
	printf "\n%d compared, %d regressions, %d new, %d removed\n", \
		compared + 0, bad + 0, added + 0, removed + 0
	exit bad > 0 ? 1 : 0
}
' /tmp/bench_old.$$ /tmp/bench_new.$$
