#!/bin/sh
# bench-compare.sh — diff the two most recent BENCH_<n>.json trajectory
# points and flag >10% ns/op regressions on benchmarks present in both.
#
# Usage:
#   scripts/bench-compare.sh [OLD.json NEW.json]
#
# With no arguments the two highest-numbered BENCH_<n>.json in the
# repository root are compared. Exits nonzero if any shared benchmark
# regressed by more than the threshold, so CI can gate on it. New or
# removed benchmarks are reported but never fail the comparison.
set -eu

cd "$(dirname "$0")/.."

THRESHOLD=10 # percent ns/op growth tolerated before flagging

if [ $# -eq 2 ]; then
	old="$1"
	new="$2"
else
	prev=''
	latest=''
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		prev="$latest"
		latest="BENCH_${n}.json"
		n=$((n + 1))
	done
	if [ -z "$prev" ]; then
		echo "bench-compare: need at least two BENCH_<n>.json points" >&2
		exit 2
	fi
	old="$prev"
	new="$latest"
fi

echo "comparing $old -> $new (flagging ns/op regressions > ${THRESHOLD}%)"

# The emitter writes one result object per line, so a line-oriented parse
# is reliable without a JSON tool. Only the "results" arrays are read;
# an embedded "baseline" section is ignored.
extract() {
	awk '
	/"results": \[/ { in_results = 1; next }
	in_results && /^  \]/ { in_results = 0 }
	in_results && /"name"/ {
		name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
		ns = $0; sub(/.*"ns_op": /, "", ns); sub(/[,}].*/, "", ns)
		print name, ns
	}
	' "$1"
}

extract "$old" >/tmp/bench_old.$$
extract "$new" >/tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

awk -v threshold="$THRESHOLD" '
NR == FNR { old[$1] = $2; next }
{
	new[$1] = $2
	if (!($1 in old)) { added++; next }
	compared++
	delta = 100 * ($2 - old[$1]) / old[$1]
	if (delta > threshold) {
		printf "REGRESSION %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", $1, old[$1], $2, delta
		bad++
	} else {
		printf "ok         %-60s %12.0f -> %12.0f ns/op (%+.1f%%)\n", $1, old[$1], $2, delta
	}
}
END {
	for (name in old) if (!(name in new)) removed++
	printf "\n%d compared, %d regressions, %d new, %d removed\n", \
		compared + 0, bad + 0, added + 0, removed + 0
	exit bad > 0 ? 1 : 0
}
' /tmp/bench_old.$$ /tmp/bench_new.$$
