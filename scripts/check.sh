#!/bin/sh
# check.sh — the repo's verification gate: vet, build, and race-test
# everything. Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== myproxy-vet ./... (syntactic + flow-sensitive + concurrency + distributed-protocol + hot-path cost + trust-boundary taint passes)"
go run ./cmd/myproxy-vet -baseline vet-baseline.txt -budget vet-cost-budget.txt ./...

echo "== vet-baseline.txt stays empty (real findings are fixed or pragma'd, never baselined)"
if grep -v '^#' vet-baseline.txt | grep -q '[^[:space:]]'; then
    echo "error: vet-baseline.txt carries entries; fix the findings or add //myproxy:allow pragmas with rationale" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/keypool ./internal/gsi ./internal/core (hot-path concurrency)"
go test -race -count=1 ./internal/keypool ./internal/gsi ./internal/core

echo "== go test -race cluster failover smoke (kill-one-replica drill, DESIGN.md §12)"
go test -race -count=1 ./internal/cluster
go test -race -count=1 -run 'TestClusterFailover|TestClusterPartition' ./internal/sim

echo "== fuzz smoke (wire parsers + frame decoders, time-boxed)"
go test -run='^$' -fuzz=FuzzParseRequest -fuzztime=5s ./internal/protocol
go test -run='^$' -fuzz=FuzzParseResponse -fuzztime=5s ./internal/protocol
go test -run='^$' -fuzz=FuzzReadFrame -fuzztime=5s ./internal/gsi
go test -run='^$' -fuzz=FuzzReadStreamFrame -fuzztime=5s ./internal/gsi

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
