#!/bin/sh
# check.sh — the repo's verification gate: vet, build, and race-test
# everything. Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== myproxy-vet ./... (syntactic + flow-sensitive + concurrency + distributed-protocol + hot-path cost passes)"
go run ./cmd/myproxy-vet -baseline vet-baseline.txt -budget vet-cost-budget.txt ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/keypool ./internal/gsi ./internal/core (hot-path concurrency)"
go test -race -count=1 ./internal/keypool ./internal/gsi ./internal/core

echo "== go test -race cluster failover smoke (kill-one-replica drill, DESIGN.md §12)"
go test -race -count=1 ./internal/cluster
go test -race -count=1 -run 'TestClusterFailover|TestClusterPartition' ./internal/sim

echo "== go test -race ./..."
go test -race ./...

echo "== OK"
